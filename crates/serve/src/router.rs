//! `ops5-router` — consistent-hash session sharding across server
//! processes, with live migration on drain.
//!
//! One serve process multiplexes many sessions over a worker pool; the
//! router is the next scaling step out: it spreads client connections
//! across *several* `ops5-serve` backends. Placement is a consistent-hash
//! ring (FNV-1a over virtual nodes, [`RouterConfig::replicas`] points per
//! backend) keyed by a router-assigned per-connection session key, so
//! adding or draining a backend moves only the sessions that must move.
//!
//! The router is a line-level proxy on a single reactor thread. For each
//! client connection it tracks just enough protocol state to stay honest:
//!
//! * client→backend framing (`OPEN -`/`BATCH`/`RESTORE` bodies) and a
//!   count of requests in flight, mirroring the server's own framing;
//! * backend→client reply framing (single-line `OK`/`ERR`/`BUSY`/
//!   `OVERLOADED` vs multi-line…`END`), which is how in-flight drops;
//! * the session's registry program and matcher, sniffed from the `OPEN`/
//!   `RESTORE` the client sent (confirmed against the backend's `OK`), so
//!   the session can be reconstructed elsewhere.
//!
//! **Drain / rebalance.** A connection whose first line is `ADMIN` speaks
//! the admin dialect instead: `RING?` (backend liveness + load), `DRAIN
//! <i>` (mark backend `i` dead on the ring and migrate its sessions away),
//! `STATS?`, and `SHUTDOWN`. Migration happens at each connection's safe
//! point — no requests in flight, top-level framing — and replays the
//! durable-session machinery over the wire: `SNAPSHOT?` on the old
//! backend, `CLOSE`, then `RESTORE <program> [matcher]` + snapshot + `END`
//! on the ring's new target. A pair that is mid command when the drain
//! lands keeps forwarding until the command (and any multi-line body)
//! completes and its replies return; only then does it hold new input and
//! move. The blocking snapshot/restore conversation itself runs on a
//! helper thread per migrating pair — never on the reactor — and the
//! rebuilt backend is handed back through a [`reactor::Waker`], so a slow
//! or hung backend during a drain cannot stall unrelated connections.
//! Client lines that arrive while the backend is in transit wait in the
//! read buffer and resume against the new backend; the client observes
//! nothing but latency. Sessions opened with an inline `OPEN -` program
//! have no registry name to `RESTORE` from and are failed loudly instead
//! of silently losing state.
//!
//! `SHUTDOWN` from ordinary clients is refused (one tenant must not take
//! down a shared backend); `ADMIN SHUTDOWN` stops the router and forwards
//! the shutdown to every live backend.

use crate::protocol::{parse_line, Line};
use reactor::{Events, Interest, LineBuf, Poll, Token, Waker, WriteBuf};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const LISTENER: Token = Token(0);
/// Migration helper threads kick the poll loop through this token.
const MIG_WAKER: Token = Token(1);
/// Pair tokens start here: client = `BASE + 2*idx`, backend = `+1`.
const PAIR_BASE: usize = 2;

/// Poll tick (stop-flag and drain checks).
const TICK: Duration = Duration::from_millis(100);
/// Read/write timeout for the blocking migration conversation.
const MIGRATE_IO: Duration = Duration::from_secs(5);
/// After `ADMIN SHUTDOWN`, how long pairs get to flush.
const STOP_GRACE: Duration = Duration::from_secs(5);
/// Per-direction buffer cap; a flooding peer past this is cut off.
const BUF_CAP: usize = 4 * 1024 * 1024;

/// 64-bit FNV-1a, the ring's hash. Stable across processes and runs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Consistent-hash ring over backend indices: each backend contributes
/// `replicas` virtual points; a key maps to the first point at or after
/// its hash (wrapping), skipping dead backends.
pub struct HashRing {
    points: Vec<(u64, usize)>,
}

impl HashRing {
    pub fn new(n_backends: usize, replicas: usize) -> HashRing {
        let mut points = Vec::with_capacity(n_backends * replicas);
        for b in 0..n_backends {
            for r in 0..replicas {
                points.push((fnv1a(format!("backend-{b}-vnode-{r}").as_bytes()), b));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The live backend owning `key`, or `None` when every backend is dead.
    pub fn lookup(&self, key: u64, live: &[bool]) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(h, _)| h < key);
        for i in 0..self.points.len() {
            let (_, b) = self.points[(start + i) % self.points.len()];
            if live.get(b).copied().unwrap_or(false) {
                return Some(b);
            }
        }
        None
    }
}

/// Router tuning: the backend set and the ring's virtual-node count.
#[derive(Clone)]
pub struct RouterConfig {
    pub backends: Vec<SocketAddr>,
    /// Virtual nodes per backend; more points = smoother distribution.
    pub replicas: usize,
}

impl RouterConfig {
    pub fn new(backends: Vec<SocketAddr>) -> RouterConfig {
        RouterConfig {
            backends,
            replicas: 64,
        }
    }
}

/// A bound router, ready to [`run`](Router::run) or [`spawn`](Router::spawn).
pub struct Router {
    listener: TcpListener,
    cfg: RouterConfig,
    addr: SocketAddr,
}

/// Handle to a spawned router: its address plus the reactor thread.
pub struct RouterHandle {
    pub addr: SocketAddr,
    join: JoinHandle<io::Result<()>>,
}

impl RouterHandle {
    /// Waits for the router to stop (`ADMIN SHUTDOWN`).
    pub fn join(self) -> io::Result<()> {
        self.join
            .join()
            .map_err(|_| io::Error::other("router thread panicked"))?
    }
}

impl Router {
    pub fn bind(addr: impl ToSocketAddrs, cfg: RouterConfig) -> io::Result<Router> {
        if cfg.backends.is_empty() {
            return Err(io::Error::other("router needs at least one backend"));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Router {
            listener,
            cfg,
            addr,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn spawn(self) -> RouterHandle {
        let addr = self.addr;
        let join = std::thread::spawn(move || self.run());
        RouterHandle { addr, join }
    }

    /// The reactor loop; returns after `ADMIN SHUTDOWN` once pairs flush.
    pub fn run(self) -> io::Result<()> {
        let _ = reactor::raise_nofile_limit(65536);
        self.listener.set_nonblocking(true)?;
        let poll = Poll::new()?;
        poll.register(self.listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
        let mig_waker = Arc::new(Waker::new(&poll, MIG_WAKER)?);
        let (mig_tx, mig_rx) = mpsc::channel::<MigDone>();
        let mut state = State {
            ring: HashRing::new(self.cfg.backends.len(), self.cfg.replicas.max(1)),
            live: vec![true; self.cfg.backends.len()],
            addrs: self.cfg.backends.clone(),
            next_key: 1,
            migrations: 0,
            migration_failures: 0,
            stop: false,
            mig_tx,
            mig_waker: mig_waker.clone(),
        };
        let mut events = Events::with_capacity(256);
        let mut pairs: Vec<Option<Pair>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut stopping: Option<Instant> = None;

        loop {
            poll.poll(&mut events, Some(TICK))?;
            let mut touched: Vec<usize> = Vec::new();

            for ev in events.iter() {
                match ev.token() {
                    LISTENER => {
                        if stopping.is_some() {
                            continue;
                        }
                        loop {
                            let (stream, _) = match self.listener.accept() {
                                Ok(a) => a,
                                Err(_) => break,
                            };
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let idx = free.pop().unwrap_or_else(|| {
                                pairs.push(None);
                                pairs.len() - 1
                            });
                            if poll
                                .register(
                                    stream.as_raw_fd(),
                                    Token(PAIR_BASE + 2 * idx),
                                    Interest::READABLE,
                                )
                                .is_err()
                            {
                                free.push(idx);
                                continue;
                            }
                            let key = state.next_key;
                            state.next_key += 1;
                            pairs[idx] = Some(Pair::new(key, stream));
                        }
                    }
                    MIG_WAKER => mig_waker.drain(),
                    Token(t) => {
                        let idx = (t - PAIR_BASE) / 2;
                        let is_backend = (t - PAIR_BASE) % 2 == 1;
                        let Some(pair) = pairs.get_mut(idx).and_then(Option::as_mut) else {
                            continue;
                        };
                        if is_backend {
                            if ev.is_readable() {
                                backend_read(pair);
                            }
                        } else if ev.is_readable() && !pair.stop_input && !pair.client_eof {
                            client_read(pair);
                        }
                        touched.push(idx);
                    }
                }
            }

            // Collect backends rebuilt by migration helper threads. The
            // (idx, key) pair guards against slot reuse: a result for a
            // connection that died mid-migration is silently dropped.
            while let Ok(done) = mig_rx.try_recv() {
                let Some(pair) = pairs.get_mut(done.idx).and_then(Option::as_mut) else {
                    continue;
                };
                if pair.key != done.key || !pair.migrating {
                    continue;
                }
                pair.migrating = false;
                match done.result {
                    Ok((stream, rd)) => {
                        let b = Backend {
                            stream,
                            rd,
                            wr: WriteBuf::new(),
                            interest: Interest::READABLE,
                        };
                        if poll
                            .register(
                                b.stream.as_raw_fd(),
                                Token(PAIR_BASE + 2 * done.idx + 1),
                                Interest::READABLE,
                            )
                            .is_ok()
                        {
                            pair.backend = Some(b);
                            pair.backend_idx = done.target;
                            state.migrations += 1;
                        } else {
                            fail_migration(pair, &mut state, "register migrated backend");
                        }
                    }
                    Err(e) => fail_migration(pair, &mut state, &e),
                }
                touched.push(done.idx);
            }

            if state.stop && stopping.is_none() {
                stopping = Some(Instant::now());
                for (idx, p) in pairs.iter_mut().enumerate() {
                    if let Some(pair) = p {
                        pair.stop_input = true;
                        pair.backend_gone = true;
                        touched.push(idx);
                    }
                }
            }

            // Service every touched pair: parse admin/routed lines, relay
            // replies, attempt pending migrations, flush, fix interest.
            let mut i = 0;
            while i < touched.len() {
                let idx = touched[i];
                i += 1;
                if pairs.get(idx).map(|p| p.is_none()).unwrap_or(true) {
                    continue;
                }
                service_pair(&mut pairs, idx, &mut state, &poll);
                let Some(pair) = pairs[idx].as_mut() else {
                    continue;
                };
                pump_pair(pair, idx, &poll);
                if pair.finished() {
                    let _ = poll.deregister(pair.client.as_raw_fd());
                    if let Some(b) = &pair.backend {
                        let _ = poll.deregister(b.stream.as_raw_fd());
                    }
                    pairs[idx] = None;
                    free.push(idx);
                }
            }

            if let Some(since) = stopping {
                let alive = pairs.iter().any(Option::is_some);
                if !alive || since.elapsed() > STOP_GRACE {
                    break;
                }
            }
        }
        Ok(())
    }
}

struct State {
    ring: HashRing,
    live: Vec<bool>,
    addrs: Vec<SocketAddr>,
    next_key: u64,
    migrations: u64,
    migration_failures: u64,
    stop: bool,
    /// Helper threads report rebuilt backends here…
    mig_tx: mpsc::Sender<MigDone>,
    /// …and kick the poll loop so the result is collected promptly.
    mig_waker: Arc<Waker>,
}

/// Result of one off-reactor migration conversation.
struct MigDone {
    idx: usize,
    /// The pair's connection key at spawn time; stale results for a
    /// recycled slot must not be delivered.
    key: u64,
    target: usize,
    result: Result<(TcpStream, LineBuf), String>,
}

/// Client→backend framing, mirroring the server's body modes so request
/// counting stays in sync even across multi-line commands.
enum CMode {
    Top,
    OpenBody,
    RestoreBody,
    BatchBody,
}

/// Backend→client reply framing.
#[derive(Clone, Copy)]
enum RMode {
    Idle,
    /// Inside a multi-line reply. Every multi-line head declares its body
    /// length (`SNAPSHOT <n>`, `METRICS <n>`, …), so `remaining` counts
    /// down to the `END` terminator instead of scanning for it — a body
    /// line that happens to equal `END` cannot desync the framing. `None`
    /// falls back to the terminator scan for a head with no parsable count.
    Multi {
        remaining: Option<usize>,
    },
}

/// What an in-flight request will tell us when its reply lands.
enum Tag {
    /// `OPEN`/`RESTORE`: on `OK`, a session exists; `Some` carries the
    /// registry program + matcher needed to migrate it, `None` marks an
    /// inline (non-migratable) program.
    Open(Option<SessionInfo>),
    /// `CLOSE`: on `OK`, the session is gone.
    Close,
    Other,
}

#[derive(Clone)]
struct SessionInfo {
    program: String,
    matcher: Option<String>,
}

enum PairKind {
    /// Nothing received yet: the first line picks admin or routed.
    New,
    Admin,
    Routed,
}

struct Backend {
    stream: TcpStream,
    rd: LineBuf,
    wr: WriteBuf,
    interest: Interest,
}

struct Pair {
    /// Ring key for placement; assigned at accept, stable for the
    /// connection's life so migration lands deterministically.
    key: u64,
    kind: PairKind,
    client: TcpStream,
    c_rd: LineBuf,
    c_wr: WriteBuf,
    c_interest: Interest,
    backend: Option<Backend>,
    backend_idx: usize,
    c_mode: CMode,
    r_mode: RMode,
    /// Requests forwarded whose replies have not yet fully returned.
    in_flight: u64,
    tags: VecDeque<Tag>,
    /// A session is open on the backend.
    session_open: bool,
    /// How to rebuild it elsewhere (`None` = non-migratable).
    info: Option<SessionInfo>,
    /// Set by `DRAIN`; cleared when the session lands on a live backend.
    migrate_pending: bool,
    /// A helper thread is rebuilding the backend elsewhere; input waits
    /// in `c_rd` until the result comes back through the waker.
    migrating: bool,
    /// Client half-closed its write side: read no more, but keep routing
    /// the lines already buffered and flush their replies before closing.
    client_eof: bool,
    /// Stop parsing client input (buffered lines drained after EOF,
    /// migration failure, or router stop).
    stop_input: bool,
    /// Backend side is gone; close after the client buffer flushes.
    backend_gone: bool,
    dead: bool,
}

impl Pair {
    fn new(key: u64, client: TcpStream) -> Pair {
        Pair {
            key,
            kind: PairKind::New,
            client,
            c_rd: LineBuf::new(),
            c_wr: WriteBuf::new(),
            c_interest: Interest::READABLE,
            backend: None,
            backend_idx: usize::MAX,
            c_mode: CMode::Top,
            r_mode: RMode::Idle,
            in_flight: 0,
            tags: VecDeque::new(),
            session_open: false,
            info: None,
            migrate_pending: false,
            migrating: false,
            client_eof: false,
            stop_input: false,
            backend_gone: false,
            dead: false,
        }
    }

    /// Queues a router-originated reply to the client. Only used where no
    /// backend replies are pending, so ordering holds.
    fn reply(&mut self, line: &str) {
        self.c_wr.push(line.as_bytes());
        self.c_wr.push(b"\n");
    }

    fn finished(&self) -> bool {
        self.dead
            || (self.stop_input && self.c_wr.is_empty() && self.in_flight == 0)
            || (self.backend_gone && self.backend.is_none() && self.c_wr.is_empty())
    }
}

/// Drains readable client bytes into the pair's line buffer.
fn client_read(pair: &mut Pair) {
    for _ in 0..8 {
        if pair.c_rd.len() > BUF_CAP {
            break;
        }
        match pair.c_rd.read_from(&mut pair.client) {
            Ok(0) => {
                // Client finished sending. Commands already buffered
                // still execute and their replies still flush — a
                // pipelining client that half-closes its write side gets
                // everything it would get on a direct connection; the
                // pair winds down afterwards (service_pair/finished).
                pair.client_eof = true;
                break;
            }
            Ok(n) => {
                if n < 4096 {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                pair.dead = true;
                break;
            }
        }
    }
}

/// Drains readable backend bytes and relays completed reply lines.
fn backend_read(pair: &mut Pair) {
    let Some(b) = pair.backend.as_mut() else {
        return;
    };
    for _ in 0..8 {
        match b.rd.read_from(&mut b.stream) {
            Ok(0) => {
                pair.backend_gone = true;
                break;
            }
            Ok(n) => {
                if n < 4096 {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                pair.backend_gone = true;
                break;
            }
        }
    }
    while let Some(line) = pair.backend.as_mut().and_then(|b| b.rd.next_line()) {
        if pair.c_wr.len() > BUF_CAP {
            // Client is not draining; cut it off rather than buffer
            // without bound.
            pair.dead = true;
            return;
        }
        pair.c_wr.push(line.as_bytes());
        pair.c_wr.push(b"\n");
        match pair.r_mode {
            RMode::Idle => {
                let single = ["OK", "ERR", "BUSY", "OVERLOADED"]
                    .iter()
                    .any(|p| line == *p || line.starts_with(&format!("{p} ")));
                if single {
                    complete_reply(pair, &line);
                } else {
                    let declared = line
                        .split_whitespace()
                        .nth(1)
                        .and_then(|t| t.parse::<usize>().ok());
                    pair.r_mode = RMode::Multi {
                        remaining: declared,
                    };
                }
            }
            RMode::Multi { remaining } => match remaining {
                Some(0) => {
                    // All declared body lines consumed: this line is the
                    // END terminator.
                    pair.r_mode = RMode::Idle;
                    complete_reply(pair, "");
                }
                Some(n) => {
                    pair.r_mode = RMode::Multi {
                        remaining: Some(n - 1),
                    };
                }
                None => {
                    if line == "END" {
                        pair.r_mode = RMode::Idle;
                        complete_reply(pair, "");
                    }
                }
            },
        }
    }
    if pair.backend_gone {
        // Drop the dead backend; the pair closes once the client buffer
        // flushes (finished()).
        pair.backend = None;
    }
}

/// Bookkeeping when one full reply has been relayed: the in-flight count
/// drops and the oldest tag resolves session state.
fn complete_reply(pair: &mut Pair, first_line: &str) {
    pair.in_flight = pair.in_flight.saturating_sub(1);
    let ok = first_line.starts_with("OK");
    match pair.tags.pop_front() {
        Some(Tag::Open(info)) => {
            if ok {
                pair.session_open = true;
                pair.info = info;
            }
        }
        Some(Tag::Close) => {
            if ok {
                pair.session_open = false;
                pair.info = None;
            }
        }
        Some(Tag::Other) | None => {}
    }
}

/// Parses whatever complete lines a pair has buffered. Routed pairs
/// forward with framing; admin pairs execute commands against the ring.
fn service_pair(pairs: &mut [Option<Pair>], idx: usize, state: &mut State, poll: &Poll) {
    // First line decides the dialect.
    {
        let Some(pair) = pairs[idx].as_mut() else {
            return;
        };
        if matches!(pair.kind, PairKind::New) {
            let Some(line) = pair.c_rd.next_line() else {
                if pair.client_eof {
                    pair.stop_input = true;
                }
                return;
            };
            if line.trim().eq_ignore_ascii_case("ADMIN") {
                pair.kind = PairKind::Admin;
                pair.reply("OK admin");
            } else {
                pair.kind = PairKind::Routed;
                if !connect_backend(pair, idx, state, poll) {
                    return;
                }
                route_line(pair, line);
            }
        }
    }
    loop {
        let Some(pair) = pairs[idx].as_mut() else {
            return;
        };
        if pair.dead || pair.stop_input {
            return;
        }
        match pair.kind {
            PairKind::New => return,
            PairKind::Routed => {
                // Backend in transit on a helper thread: lines wait in
                // the read buffer until the rebuilt backend lands.
                if pair.migrating {
                    return;
                }
                if pair.migrate_pending {
                    let at_top = matches!(pair.c_mode, CMode::Top);
                    if at_top && pair.in_flight == 0 {
                        // Safe point: hand the backend to a helper thread
                        // (or resolve trivially) before routing more.
                        if !try_migrate(pair, idx, state, poll) {
                            return;
                        }
                    } else if at_top {
                        // Hold new commands so the in-flight replies can
                        // drain and the safe point converges.
                        return;
                    }
                    // Mid multi-line body: keep forwarding below so the
                    // command completes — holding its terminator would
                    // deadlock the drain against the backend's reply.
                }
                let Some(line) = pair.c_rd.next_line() else {
                    if pair.client_eof {
                        pair.stop_input = true;
                    }
                    return;
                };
                route_line(pair, line);
            }
            PairKind::Admin => {
                let Some(line) = pair.c_rd.next_line() else {
                    if pair.client_eof {
                        pair.stop_input = true;
                    }
                    return;
                };
                admin_line(pairs, idx, state, poll, line);
            }
        }
    }
}

/// Connects a routed pair to its ring-assigned backend. On failure the
/// client gets a final `ERR` and the pair winds down.
fn connect_backend(pair: &mut Pair, idx: usize, state: &mut State, poll: &Poll) -> bool {
    let Some(target) = state
        .ring
        .lookup(fnv1a(&pair.key.to_le_bytes()), &state.live)
    else {
        pair.reply("ERR no live backend");
        pair.stop_input = true;
        pair.backend_gone = true;
        return false;
    };
    match open_backend(state.addrs[target]) {
        Ok(b) => {
            if poll
                .register(
                    b.stream.as_raw_fd(),
                    Token(PAIR_BASE + 2 * idx + 1),
                    Interest::READABLE,
                )
                .is_err()
            {
                pair.reply("ERR backend unavailable");
                pair.stop_input = true;
                pair.backend_gone = true;
                return false;
            }
            pair.backend = Some(b);
            pair.backend_idx = target;
            true
        }
        Err(_) => {
            pair.reply(&format!("ERR backend {} unavailable", state.addrs[target]));
            pair.stop_input = true;
            pair.backend_gone = true;
            false
        }
    }
}

fn open_backend(addr: SocketAddr) -> io::Result<Backend> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.set_nonblocking(true)?;
    Ok(Backend {
        stream,
        rd: LineBuf::new(),
        wr: WriteBuf::new(),
        interest: Interest::READABLE,
    })
}

/// Forwards one client line to the backend, keeping framing, the
/// in-flight count, and the session sniff in step with what the server
/// will do with it.
fn route_line(pair: &mut Pair, line: String) {
    let trimmed = line.trim().to_string();
    match pair.c_mode {
        CMode::Top => {
            if trimmed.is_empty() {
                forward(pair, &line);
                return;
            }
            match parse_line(&trimmed) {
                Ok(Line::Shutdown) => {
                    // One tenant must not kill every session on a shared
                    // backend. (Router-originated reply: safe only because
                    // a well-behaved client has drained earlier replies;
                    // a pipelined SHUTDOWN may see it early.)
                    pair.reply("ERR SHUTDOWN not allowed through router (use ADMIN)");
                    return;
                }
                Ok(Line::Open {
                    program, matcher, ..
                }) => {
                    pair.in_flight += 1;
                    if program == "-" {
                        pair.tags.push_back(Tag::Open(None));
                        pair.c_mode = CMode::OpenBody;
                    } else {
                        pair.tags
                            .push_back(Tag::Open(Some(SessionInfo { program, matcher })));
                    }
                }
                Ok(Line::Restore {
                    program, matcher, ..
                }) => {
                    pair.in_flight += 1;
                    pair.tags
                        .push_back(Tag::Open(Some(SessionInfo { program, matcher })));
                    pair.c_mode = CMode::RestoreBody;
                }
                Ok(Line::BatchStart) => {
                    pair.in_flight += 1;
                    pair.tags.push_back(Tag::Other);
                    pair.c_mode = CMode::BatchBody;
                }
                Ok(Line::Close) => {
                    pair.in_flight += 1;
                    pair.tags.push_back(Tag::Close);
                }
                // Everything else — session commands, END outside BATCH,
                // unparsable lines — draws exactly one reply.
                Ok(_) | Err(_) => {
                    pair.in_flight += 1;
                    pair.tags.push_back(Tag::Other);
                }
            }
            forward(pair, &line);
        }
        CMode::OpenBody => {
            if trimmed.eq_ignore_ascii_case("END") {
                pair.c_mode = CMode::Top;
            }
            forward(pair, &line);
        }
        CMode::RestoreBody => {
            if trimmed == "END" {
                pair.c_mode = CMode::Top;
            }
            forward(pair, &line);
        }
        CMode::BatchBody => {
            if !trimmed.is_empty() {
                match parse_line(&trimmed) {
                    Ok(Line::Assert(_)) | Ok(Line::Retract(_)) => {}
                    // END closes the batch; anything else aborts it on the
                    // server (early ERR), so framing returns to top level
                    // either way.
                    Ok(_) | Err(_) => pair.c_mode = CMode::Top,
                }
            }
            forward(pair, &line);
        }
    }
}

fn forward(pair: &mut Pair, line: &str) {
    if let Some(b) = pair.backend.as_mut() {
        if b.wr.len() > BUF_CAP {
            pair.dead = true;
            return;
        }
        b.wr.push(line.as_bytes());
        b.wr.push(b"\n");
    }
}

/// One admin command. Takes the whole pair table because `RING?` reports
/// per-backend load and `DRAIN` walks every routed pair.
fn admin_line(
    pairs: &mut [Option<Pair>],
    idx: usize,
    state: &mut State,
    poll: &Poll,
    line: String,
) {
    let line = line.trim().to_string();
    if line.is_empty() {
        return;
    }
    let upper = line.to_ascii_uppercase();
    if upper == "RING?" {
        let mut out: Vec<String> = Vec::new();
        for (b, addr) in state.addrs.iter().enumerate() {
            let mut pairs_on = 0usize;
            let mut sessions_on = 0usize;
            for p in pairs.iter().flatten() {
                // A pair whose backend is in transit still counts against
                // its old backend: `DRAIN` pollers must not see the ring
                // empty before every migration has actually resolved.
                if (p.backend.is_some() || p.migrating) && p.backend_idx == b {
                    pairs_on += 1;
                    if p.session_open {
                        sessions_on += 1;
                    }
                }
            }
            out.push(format!(
                "backend {b} addr={addr} live={} pairs={pairs_on} sessions={sessions_on}",
                state.live[b]
            ));
        }
        let pair = pairs[idx].as_mut().expect("admin pair");
        pair.reply(&format!("RING {}", out.len()));
        for l in &out {
            pair.reply(l);
        }
        pair.reply("END");
    } else if let Some(arg) = upper.strip_prefix("DRAIN ") {
        let Ok(b) = arg.trim().parse::<usize>() else {
            pairs[idx]
                .as_mut()
                .unwrap()
                .reply("ERR DRAIN wants a backend index");
            return;
        };
        if b >= state.live.len() {
            pairs[idx]
                .as_mut()
                .unwrap()
                .reply(&format!("ERR no backend {b} (have {})", state.live.len()));
            return;
        }
        if state.live.iter().filter(|&&l| l).count() <= 1 && state.live[b] {
            pairs[idx]
                .as_mut()
                .unwrap()
                .reply("ERR cannot drain the last live backend");
            return;
        }
        state.live[b] = false;
        let mut marked = 0usize;
        let to_move: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter_map(|(j, p)| {
                let p = p.as_ref()?;
                (j != idx && p.backend.is_some() && p.backend_idx == b).then_some(j)
            })
            .collect();
        for j in &to_move {
            if let Some(p) = pairs[*j].as_mut() {
                p.migrate_pending = true;
                marked += 1;
            }
        }
        pairs[idx]
            .as_mut()
            .unwrap()
            .reply(&format!("OK draining backend {b} pairs={marked}"));
        // Idle pairs start migrating right now (each on its own helper
        // thread); busy ones follow at their next safe point.
        for j in to_move {
            let Some(p) = pairs[j].as_mut() else { continue };
            if p.migrate_pending {
                try_migrate(p, j, state, poll);
            }
        }
    } else if upper == "STATS?" {
        let open = pairs.iter().flatten().count();
        let pair = pairs[idx].as_mut().expect("admin pair");
        pair.reply("RSTATS 3");
        pair.reply(&format!("pairs {open}"));
        pair.reply(&format!("migrations {}", state.migrations));
        pair.reply(&format!("migration_failures {}", state.migration_failures));
        pair.reply("END");
    } else if upper == "SHUTDOWN" {
        // Forward to every backend — drained ones included; a dead ring
        // entry is still a running process — then stop the router.
        for addr in state.addrs.iter() {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.set_write_timeout(Some(MIGRATE_IO));
                let _ = s.write_all(b"SHUTDOWN\n");
            }
        }
        let pair = pairs[idx].as_mut().expect("admin pair");
        pair.reply("OK router shutting down");
        state.stop = true;
    } else {
        pairs[idx].as_mut().unwrap().reply(&format!(
            "ERR unknown admin command `{line}` (RING?|DRAIN <i>|STATS?|SHUTDOWN)"
        ));
    }
}

/// Reads one line from a blocking stream through a [`LineBuf`].
fn blocking_line(stream: &mut TcpStream, buf: &mut LineBuf) -> Result<String, String> {
    loop {
        if let Some(l) = buf.next_line() {
            return Ok(l);
        }
        match buf.read_from(stream) {
            Ok(0) => return Err("backend closed mid-reply".into()),
            Ok(_) => {}
            Err(e) => return Err(format!("backend read: {e}")),
        }
    }
}

/// Attempts the pending migration at a safe point (no requests in flight,
/// top-level framing). Returns true when the pending flag cleared without
/// leaving the reactor — nothing needed to move. Otherwise returns false:
/// either the snapshot/restore conversation was handed to a helper thread
/// (`migrating` set; the result comes back through the waker) or the
/// migration failed, the client got a final `ERR`, and the pair winds
/// down — losing state silently would be worse than losing the
/// connection loudly.
fn try_migrate(pair: &mut Pair, idx: usize, state: &mut State, poll: &Poll) -> bool {
    if pair.in_flight > 0 || !matches!(pair.c_mode, CMode::Top) || pair.migrating {
        return false;
    }
    let Some(target) = state
        .ring
        .lookup(fnv1a(&pair.key.to_le_bytes()), &state.live)
    else {
        fail_migration(pair, state, "no live backend");
        return false;
    };
    let Some(old) = pair.backend.take() else {
        pair.migrate_pending = false;
        return true;
    };
    if target == pair.backend_idx {
        pair.backend = Some(old);
        pair.migrate_pending = false;
        return true;
    }
    if pair.session_open && pair.info.is_none() {
        fail_migration(
            pair,
            state,
            "session has no registry program (inline OPEN -); cannot migrate",
        );
        return false;
    }
    let _ = poll.deregister(old.stream.as_raw_fd());
    pair.migrate_pending = false;
    pair.migrating = true;
    // The blocking conversation (SNAPSHOT?/CLOSE on the old backend,
    // RESTORE on the new) runs off-reactor, one thread per migrating
    // pair: a slow backend stalls only its own pair, and concurrent
    // drains proceed in parallel. The result returns via the waker.
    let tx = state.mig_tx.clone();
    let waker = state.mig_waker.clone();
    let target_addr = state.addrs[target];
    let session_open = pair.session_open;
    let info = pair.info.clone();
    let key = pair.key;
    std::thread::spawn(move || {
        let result = migrate_conversation(old.stream, old.rd, session_open, info, target_addr);
        let _ = tx.send(MigDone {
            idx,
            key,
            target,
            result,
        });
        let _ = waker.wake();
    });
    false
}

/// The blocking half of a migration: capture the session from the
/// draining backend, free it there, and rebuild it on the ring's new
/// owner. Runs on a helper thread — never on the reactor.
fn migrate_conversation(
    mut old_stream: TcpStream,
    mut old_rd: LineBuf,
    session_open: bool,
    info: Option<SessionInfo>,
    target_addr: SocketAddr,
) -> Result<(TcpStream, LineBuf), String> {
    let _ = old_stream.set_nonblocking(false);
    let _ = old_stream.set_read_timeout(Some(MIGRATE_IO));
    let _ = old_stream.set_write_timeout(Some(MIGRATE_IO));
    // Capture state from the draining backend, then free it there.
    let snapshot: Option<Vec<String>> = if session_open {
        old_stream
            .write_all(b"SNAPSHOT?\n")
            .map_err(|e| format!("snapshot request: {e}"))?;
        let head = blocking_line(&mut old_stream, &mut old_rd)?;
        if !head.starts_with("SNAPSHOT") {
            return Err(format!("unexpected SNAPSHOT? reply: {head}"));
        }
        let mut body = Vec::new();
        loop {
            let l = blocking_line(&mut old_stream, &mut old_rd)?;
            if l == "END" {
                break;
            }
            body.push(l);
        }
        old_stream
            .write_all(b"CLOSE\n")
            .map_err(|e| format!("close request: {e}"))?;
        let _ = blocking_line(&mut old_stream, &mut old_rd)?;
        Some(body)
    } else {
        None
    };
    // Rebuild on the ring's new owner.
    let mut ns =
        TcpStream::connect(target_addr).map_err(|e| format!("connect {target_addr}: {e}"))?;
    let _ = ns.set_nodelay(true);
    let _ = ns.set_read_timeout(Some(MIGRATE_IO));
    let _ = ns.set_write_timeout(Some(MIGRATE_IO));
    let mut nrd = LineBuf::new();
    if let Some(body) = snapshot {
        let info = info.as_ref().expect("checked migratable");
        let mut req = format!("RESTORE {}", info.program);
        if let Some(m) = &info.matcher {
            req.push(' ');
            req.push_str(m);
        }
        req.push('\n');
        let mut payload = req;
        for l in &body {
            payload.push_str(l);
            payload.push('\n');
        }
        payload.push_str("END\n");
        ns.write_all(payload.as_bytes())
            .map_err(|e| format!("restore request: {e}"))?;
        let reply = blocking_line(&mut ns, &mut nrd)?;
        if !reply.starts_with("OK") {
            return Err(format!("restore rejected: {reply}"));
        }
    }
    ns.set_nonblocking(true)
        .map_err(|e| format!("nonblocking: {e}"))?;
    let _ = ns.set_read_timeout(None);
    let _ = ns.set_write_timeout(None);
    Ok((ns, nrd))
}

fn fail_migration(pair: &mut Pair, state: &mut State, why: &str) {
    state.migration_failures += 1;
    pair.migrating = false;
    pair.reply(&format!("ERR migration failed: {why}"));
    pair.migrate_pending = false;
    pair.stop_input = true;
    pair.backend_gone = true;
    pair.backend = None;
}

/// Flushes both write buffers and keeps epoll interest in sync.
fn pump_pair(pair: &mut Pair, idx: usize, poll: &Poll) {
    if !pair.c_wr.is_empty() && pair.c_wr.write_to(&mut pair.client).is_err() {
        pair.dead = true;
    }
    if let Some(b) = pair.backend.as_mut() {
        if !b.wr.is_empty() && b.wr.write_to(&mut b.stream).is_err() {
            pair.backend_gone = true;
            pair.backend = None;
        }
    }
    if pair.dead {
        return;
    }
    let mut want = Interest::NONE;
    if !pair.stop_input && !pair.client_eof && pair.c_rd.len() <= BUF_CAP {
        want = want | Interest::READABLE;
    }
    if !pair.c_wr.is_empty() {
        want = want | Interest::WRITABLE;
    }
    if want != pair.c_interest
        && poll
            .reregister(pair.client.as_raw_fd(), Token(PAIR_BASE + 2 * idx), want)
            .is_ok()
    {
        pair.c_interest = want;
    }
    if let Some(b) = pair.backend.as_mut() {
        let mut want = Interest::READABLE;
        if !b.wr.is_empty() {
            want = want | Interest::WRITABLE;
        }
        if want != b.interest
            && poll
                .reregister(b.stream.as_raw_fd(), Token(PAIR_BASE + 2 * idx + 1), want)
                .is_ok()
        {
            b.interest = want;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_backends() {
        let ring = HashRing::new(4, 64);
        let live = vec![true; 4];
        let mut counts = [0usize; 4];
        for key in 0..10_000u64 {
            let b = ring.lookup(fnv1a(&key.to_le_bytes()), &live).unwrap();
            counts[b] += 1;
            // Determinism: same key, same backend.
            assert_eq!(ring.lookup(fnv1a(&key.to_le_bytes()), &live), Some(b));
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500, "backend {i} got only {c}/10000 keys");
        }
    }

    #[test]
    fn drained_backend_receives_nothing_and_moves_minimally() {
        let ring = HashRing::new(3, 64);
        let all = vec![true, true, true];
        let drained = vec![true, false, true];
        let mut moved = 0usize;
        for key in 0..10_000u64 {
            let h = fnv1a(&key.to_le_bytes());
            let before = ring.lookup(h, &all).unwrap();
            let after = ring.lookup(h, &drained).unwrap();
            assert_ne!(after, 1, "drained backend still assigned");
            if before != after {
                assert_eq!(before, 1, "key moved off a live backend");
                moved += 1;
            }
        }
        // Only the drained backend's share moves. With 64 vnodes the share
        // is noisy, so bound it loosely: far below "rehash everything"
        // (~two-thirds would move under modulo hashing) and far above zero.
        assert!(moved > 1_000 && moved < 6_500, "moved {moved}/10000");
    }
}
