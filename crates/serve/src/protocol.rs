//! The wire protocol: line-oriented text, one request per line.
//!
//! ```text
//! OPEN <program> [matcher] [PRIO=<p>]
//!                            open a session on a registered program,
//!                            optionally in a scheduling class
//!                            (high|normal|batch; default normal)
//! OPEN - [matcher] [PRIO=<p>]  ... on inline source (lines follow, then END)
//! ASSERT <class ^attr v ...> stage one WME               -> OK <timetag>
//! RETRACT <timetag>          stage one retraction        -> OK <timetag>
//! BATCH                      begin a multi-line batch (ASSERT/RETRACT
//! ...                        lines), closed by END       -> OK <n> <tags>
//! RUN <n>                    flush staged changes as one batch, fire up
//!                            to n cycles (0 = match-only settle)
//! CS?                        conflict set                -> CS <n> ... END
//! WM? [class]                working memory              -> WM <n> ... END
//! FIRED?                     firing log                  -> FIRED <n> ... END
//! SNAPSHOT?                  durable state snapshot      -> SNAPSHOT <n> ... END
//! RESTORE <program> [matcher] open a session from a snapshot (+ optional
//!                            change-log tail); body lines follow, then END
//! MIGRATE [matcher]          rebuild the session's engine from a live
//!                            snapshot, optionally on a different matcher
//! PRIO <class>               change the session's scheduling class
//!                            (high|normal|batch)         -> OK prio=<class>
//! CANCEL                     fast-fail every queued command of this
//!                            session (each replies ERR cancelled) and cut
//!                            an in-flight sliced RUN at its next slice
//!                            boundary                    -> OK cancelled pending=<n>
//! STATS?                     session statistics          -> OK k=v ...
//! METRICS?                   server-wide metrics in Prometheus text
//!                            exposition format           -> METRICS <n> ... END
//! CLOSE                      close the session
//! SHUTDOWN                   drain and stop the whole server
//! ```
//!
//! Every request gets exactly one reply, in request order. Single-line
//! replies are `OK ...`, `ERR ...`, or the backpressure pair `BUSY ...`
//! (server-wide run queue saturated — retry later) and `OVERLOADED ...`
//! (this session's command queue is full — drain replies first).
//! Multi-line replies open with `<KIND> <count>` and close with `END`.

use std::fmt;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// `OPEN <program> [matcher] [PRIO=<class>]`; a program of `-`
    /// introduces inline source terminated by `END`. `prio` carries the
    /// raw class name — validated where the session is built.
    Open {
        program: String,
        matcher: Option<String>,
        prio: Option<String>,
    },
    Assert(String),
    Retract(u64),
    BatchStart,
    /// Terminates a `BATCH` or an inline `OPEN -` body.
    End,
    Run(u64),
    Cs,
    Wm(Option<String>),
    Stats,
    /// Server-wide metrics snapshot (works with or without an open session).
    Metrics,
    Fired,
    /// Serialize the session's full durable state (`SNAPSHOT?`).
    Snapshot,
    /// `RESTORE <program> [matcher] [PRIO=<class>]`; body lines (snapshot
    /// text, then any change-log tail) follow, terminated by `END`.
    Restore {
        program: String,
        matcher: Option<String>,
        prio: Option<String>,
    },
    /// `MIGRATE [matcher]`: snapshot + rebuild the engine in place.
    Migrate(Option<String>),
    /// `PRIO <class>`: change the session's scheduling class.
    Prio(String),
    /// `CANCEL`: fast-fail queued commands, cut an in-flight sliced `RUN`.
    Cancel,
    Close,
    Shutdown,
}

/// Splits `OPEN`/`RESTORE` trailing arguments into (matcher, prio): one
/// optional bare matcher name plus one optional `PRIO=<class>` token, in
/// either order.
fn matcher_and_prio(verb: &str, rest: &str) -> Result<(Option<String>, Option<String>), String> {
    let mut matcher = None;
    let mut prio = None;
    for tok in rest.split_whitespace() {
        if tok.len() >= 5 && tok[..5].eq_ignore_ascii_case("PRIO=") {
            if prio.replace(tok[5..].to_string()).is_some() {
                return Err(format!("{verb} takes one PRIO= argument"));
            }
        } else if matcher.replace(tok.to_string()).is_some() {
            return Err(format!("{verb} takes at most a matcher and PRIO=<class>"));
        }
    }
    Ok((matcher, prio))
}

/// Parses one request line (already stripped of the newline).
pub fn parse_line(line: &str) -> Result<Line, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let no_arg = |l: Line| {
        if rest.is_empty() {
            Ok(l)
        } else {
            Err(format!("{verb} takes no argument"))
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "OPEN" => {
            let (program, tail) = match rest.split_once(char::is_whitespace) {
                Some((p, t)) => (p, t),
                None => (rest, ""),
            };
            if program.is_empty() {
                return Err("OPEN needs a program name (or `-`)".into());
            }
            let (matcher, prio) = matcher_and_prio("OPEN", tail)?;
            Ok(Line::Open {
                program: program.to_string(),
                matcher,
                prio,
            })
        }
        "ASSERT" => {
            if rest.is_empty() {
                Err("ASSERT needs a WME body".into())
            } else {
                Ok(Line::Assert(rest.to_string()))
            }
        }
        "RETRACT" => rest
            .parse::<u64>()
            .map(Line::Retract)
            .map_err(|_| format!("RETRACT needs a timetag, got `{rest}`")),
        "BATCH" => no_arg(Line::BatchStart),
        "END" => no_arg(Line::End),
        "RUN" => rest
            .parse::<u64>()
            .map(Line::Run)
            .map_err(|_| format!("RUN needs a cycle count, got `{rest}`")),
        "CS?" => no_arg(Line::Cs),
        "WM?" => Ok(Line::Wm(if rest.is_empty() {
            None
        } else {
            Some(rest.to_string())
        })),
        "STATS?" => no_arg(Line::Stats),
        "METRICS?" => no_arg(Line::Metrics),
        "FIRED?" => no_arg(Line::Fired),
        "SNAPSHOT?" => no_arg(Line::Snapshot),
        "RESTORE" => {
            let (program, tail) = match rest.split_once(char::is_whitespace) {
                Some((p, t)) => (p, t),
                None => (rest, ""),
            };
            if program.is_empty() {
                return Err("RESTORE needs a program name".into());
            }
            let (matcher, prio) = matcher_and_prio("RESTORE", tail)?;
            Ok(Line::Restore {
                program: program.to_string(),
                matcher,
                prio,
            })
        }
        "MIGRATE" => {
            let mut parts = rest.split_whitespace();
            let matcher = parts.next().map(|s| s.to_string());
            if parts.next().is_some() {
                return Err("MIGRATE takes at most one argument".into());
            }
            Ok(Line::Migrate(matcher))
        }
        "PRIO" => {
            let mut parts = rest.split_whitespace();
            let class = parts
                .next()
                .ok_or_else(|| "PRIO needs a class (high|normal|batch)".to_string())?
                .to_string();
            if parts.next().is_some() {
                return Err("PRIO takes one argument".into());
            }
            Ok(Line::Prio(class))
        }
        "CANCEL" => no_arg(Line::Cancel),
        "CLOSE" => no_arg(Line::Close),
        "SHUTDOWN" => no_arg(Line::Shutdown),
        "" => Err("empty request".into()),
        other => Err(format!("unknown request `{other}`")),
    }
}

/// One reply, ready to serialize. The `Busy`/`Overloaded` variants are the
/// protocol's backpressure signals and are never folded into `Err`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    Ok(String),
    /// Multi-line reply: `<head>\n` + one line per item + `END\n`.
    Multi {
        head: String,
        lines: Vec<String>,
    },
    Err(String),
    Busy(String),
    Overloaded(String),
}

impl Reply {
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok(_) | Reply::Multi { .. })
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reply::Ok(s) => writeln!(f, "OK {s}"),
            Reply::Multi { head, lines } => {
                writeln!(f, "{head}")?;
                for l in lines {
                    writeln!(f, "{l}")?;
                }
                writeln!(f, "END")
            }
            Reply::Err(s) => writeln!(f, "ERR {s}"),
            Reply::Busy(s) => writeln!(f, "BUSY {s}"),
            Reply::Overloaded(s) => writeln!(f, "OVERLOADED {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_line("OPEN rubik"),
            Ok(Line::Open {
                program: "rubik".into(),
                matcher: None,
                prio: None
            })
        );
        assert_eq!(
            parse_line("open - psm"),
            Ok(Line::Open {
                program: "-".into(),
                matcher: Some("psm".into()),
                prio: None
            })
        );
        assert_eq!(
            parse_line("OPEN rubik PRIO=batch"),
            Ok(Line::Open {
                program: "rubik".into(),
                matcher: None,
                prio: Some("batch".into())
            })
        );
        // PRIO= and matcher compose in either order; case-insensitive key.
        assert_eq!(
            parse_line("OPEN rubik prio=HIGH psm"),
            Ok(Line::Open {
                program: "rubik".into(),
                matcher: Some("psm".into()),
                prio: Some("HIGH".into())
            })
        );
        assert_eq!(parse_line("PRIO high"), Ok(Line::Prio("high".into())));
        assert_eq!(parse_line("prio batch"), Ok(Line::Prio("batch".into())));
        assert_eq!(parse_line("CANCEL"), Ok(Line::Cancel));
        assert_eq!(
            parse_line("ASSERT block ^name a"),
            Ok(Line::Assert("block ^name a".into()))
        );
        assert_eq!(parse_line("RETRACT 17"), Ok(Line::Retract(17)));
        assert_eq!(parse_line("BATCH"), Ok(Line::BatchStart));
        assert_eq!(parse_line("END"), Ok(Line::End));
        assert_eq!(parse_line("RUN 100"), Ok(Line::Run(100)));
        assert_eq!(parse_line("CS?"), Ok(Line::Cs));
        assert_eq!(parse_line("WM?"), Ok(Line::Wm(None)));
        assert_eq!(parse_line("WM? block"), Ok(Line::Wm(Some("block".into()))));
        assert_eq!(parse_line("STATS?"), Ok(Line::Stats));
        assert_eq!(parse_line("METRICS?"), Ok(Line::Metrics));
        assert_eq!(parse_line("metrics?"), Ok(Line::Metrics));
        assert_eq!(parse_line("FIRED?"), Ok(Line::Fired));
        assert_eq!(parse_line("SNAPSHOT?"), Ok(Line::Snapshot));
        assert_eq!(
            parse_line("RESTORE adder"),
            Ok(Line::Restore {
                program: "adder".into(),
                matcher: None,
                prio: None
            })
        );
        assert_eq!(
            parse_line("restore adder psm"),
            Ok(Line::Restore {
                program: "adder".into(),
                matcher: Some("psm".into()),
                prio: None
            })
        );
        assert_eq!(
            parse_line("RESTORE adder PRIO=high"),
            Ok(Line::Restore {
                program: "adder".into(),
                matcher: None,
                prio: Some("high".into())
            })
        );
        assert_eq!(parse_line("MIGRATE"), Ok(Line::Migrate(None)));
        assert_eq!(
            parse_line("MIGRATE vs2"),
            Ok(Line::Migrate(Some("vs2".into())))
        );
        assert_eq!(parse_line("CLOSE"), Ok(Line::Close));
        assert_eq!(parse_line("SHUTDOWN"), Ok(Line::Shutdown));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("FROB").is_err());
        assert!(parse_line("RUN").is_err());
        assert!(parse_line("RUN x").is_err());
        assert!(parse_line("RETRACT -3").is_err());
        assert!(parse_line("ASSERT").is_err());
        assert!(parse_line("OPEN").is_err());
        assert!(parse_line("CLOSE now").is_err());
        assert!(parse_line("METRICS? all").is_err());
        assert!(parse_line("SNAPSHOT? x").is_err());
        assert!(parse_line("RESTORE").is_err());
        assert!(parse_line("RESTORE a b c").is_err());
        assert!(parse_line("MIGRATE a b").is_err());
        assert!(parse_line("PRIO").is_err());
        assert!(parse_line("PRIO a b").is_err());
        assert!(parse_line("CANCEL now").is_err());
        assert!(parse_line("OPEN r PRIO=a PRIO=b").is_err());
        assert!(parse_line("OPEN r vs2 psm").is_err());
    }

    #[test]
    fn reply_serialization() {
        assert_eq!(Reply::Ok("17".into()).to_string(), "OK 17\n");
        assert_eq!(Reply::Err("nope".into()).to_string(), "ERR nope\n");
        assert_eq!(Reply::Busy("q".into()).to_string(), "BUSY q\n");
        assert_eq!(
            Reply::Overloaded("full".into()).to_string(),
            "OVERLOADED full\n"
        );
        let m = Reply::Multi {
            head: "CS 2".into(),
            lines: vec!["p1 1 2".into(), "p2 3".into()],
        };
        assert_eq!(m.to_string(), "CS 2\np1 1 2\np2 3\nEND\n");
    }
}
