//! Blocking client for the serve protocol — used by the load harness, the
//! integration tests, and anyone scripting a server from Rust.
//!
//! [`Client::request`] is strictly request/reply. The raw
//! [`send_line`](Client::send_line) / [`read_reply`](Client::read_reply)
//! halves exist for pipelining: fire a burst of requests without reading,
//! then drain the replies (the server guarantees reply order matches
//! request order, with `BUSY`/`OVERLOADED` taking the rejected request's
//! place).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed reply, mirroring [`crate::protocol::Reply`] from the wire side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientReply {
    Ok(String),
    Multi { head: String, lines: Vec<String> },
    Err(String),
    Busy(String),
    Overloaded(String),
}

impl ClientReply {
    pub fn is_ok(&self) -> bool {
        matches!(self, ClientReply::Ok(_) | ClientReply::Multi { .. })
    }

    /// True for the two backpressure rejections.
    pub fn is_backpressure(&self) -> bool {
        matches!(self, ClientReply::Busy(_) | ClientReply::Overloaded(_))
    }

    /// Unwraps `OK <payload>`, turning anything else into an error string.
    pub fn expect_ok(self) -> Result<String, String> {
        match self {
            ClientReply::Ok(s) => Ok(s),
            other => Err(format!("expected OK, got {other:?}")),
        }
    }

    /// Unwraps a multi-line reply's body lines.
    pub fn expect_lines(self) -> Result<Vec<String>, String> {
        match self {
            ClientReply::Multi { lines, .. } => Ok(lines),
            other => Err(format!("expected multi-line reply, got {other:?}")),
        }
    }
}

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line (pipelining half; pair with
    /// [`read_reply`](Self::read_reply)).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut s = String::new();
        if self.reader.read_line(&mut s)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(s.trim_end_matches(['\n', '\r']).to_string())
    }

    /// Reads one reply (single- or multi-line).
    pub fn read_reply(&mut self) -> io::Result<ClientReply> {
        let head = self.read_line()?;
        let (tag, rest) = match head.split_once(' ') {
            Some((t, r)) => (t, r.to_string()),
            None => (head.as_str(), String::new()),
        };
        match tag {
            "OK" => Ok(ClientReply::Ok(rest)),
            "ERR" => Ok(ClientReply::Err(rest)),
            "BUSY" => Ok(ClientReply::Busy(rest)),
            "OVERLOADED" => Ok(ClientReply::Overloaded(rest)),
            _ => {
                // Multi-line reply: `<KIND> <n>` then n lines then END.
                let mut lines = Vec::new();
                loop {
                    let l = self.read_line()?;
                    if l == "END" {
                        break;
                    }
                    lines.push(l);
                }
                Ok(ClientReply::Multi { head, lines })
            }
        }
    }

    /// One request, one reply.
    pub fn request(&mut self, line: &str) -> io::Result<ClientReply> {
        self.send_line(line)?;
        self.read_reply()
    }

    /// Opens a session on a registered program; returns the `OK` payload.
    pub fn open(&mut self, program: &str, matcher: Option<&str>) -> io::Result<ClientReply> {
        match matcher {
            Some(m) => self.request(&format!("OPEN {program} {m}")),
            None => self.request(&format!("OPEN {program}")),
        }
    }

    /// Opens a session in an explicit scheduling class
    /// (`high`|`normal`|`batch`).
    pub fn open_prio(
        &mut self,
        program: &str,
        matcher: Option<&str>,
        prio: &str,
    ) -> io::Result<ClientReply> {
        match matcher {
            Some(m) => self.request(&format!("OPEN {program} {m} PRIO={prio}")),
            None => self.request(&format!("OPEN {program} PRIO={prio}")),
        }
    }

    /// Opens a session on inline OPS5 source.
    pub fn open_source(&mut self, source: &str, matcher: Option<&str>) -> io::Result<ClientReply> {
        let head = match matcher {
            Some(m) => format!("OPEN - {m}"),
            None => "OPEN -".to_string(),
        };
        self.send_line(&head)?;
        for line in source.lines() {
            self.send_line(line)?;
        }
        self.send_line("END")?;
        self.read_reply()
    }

    /// Stages one WME; returns its timetag on success.
    pub fn assert_wme(&mut self, body: &str) -> io::Result<Result<u64, ClientReply>> {
        let reply = self.request(&format!("ASSERT {body}"))?;
        Ok(match reply {
            ClientReply::Ok(tag) => match tag.parse() {
                Ok(t) => Ok(t),
                Err(_) => Err(ClientReply::Err(format!("unparsable timetag `{tag}`"))),
            },
            other => Err(other),
        })
    }

    pub fn retract(&mut self, timetag: u64) -> io::Result<ClientReply> {
        self.request(&format!("RETRACT {timetag}"))
    }

    pub fn run(&mut self, cycles: u64) -> io::Result<ClientReply> {
        self.request(&format!("RUN {cycles}"))
    }

    pub fn cs(&mut self) -> io::Result<ClientReply> {
        self.request("CS?")
    }

    pub fn wm(&mut self, class: Option<&str>) -> io::Result<ClientReply> {
        match class {
            Some(c) => self.request(&format!("WM? {c}")),
            None => self.request("WM?"),
        }
    }

    pub fn stats(&mut self) -> io::Result<ClientReply> {
        self.request("STATS?")
    }

    /// Server-wide metrics in Prometheus text exposition format, one
    /// exposition line per reply line.
    pub fn metrics(&mut self) -> io::Result<ClientReply> {
        self.request("METRICS?")
    }

    pub fn fired(&mut self) -> io::Result<ClientReply> {
        self.request("FIRED?")
    }

    /// Pulls the session's durable state as snapshot text (the reply's
    /// body lines, newline-joined, are a complete `.snap` document).
    pub fn snapshot(&mut self) -> io::Result<ClientReply> {
        self.request("SNAPSHOT?")
    }

    /// Opens a session from a snapshot (plus an optional change-log tail
    /// appended after the snapshot's own `end` line). `body` is the raw
    /// document: snapshot text, then zero or more log lines.
    pub fn restore(
        &mut self,
        program: &str,
        matcher: Option<&str>,
        body: &str,
    ) -> io::Result<ClientReply> {
        let head = match matcher {
            Some(m) => format!("RESTORE {program} {m}"),
            None => format!("RESTORE {program}"),
        };
        self.send_line(&head)?;
        for line in body.lines() {
            self.send_line(line)?;
        }
        self.send_line("END")?;
        self.read_reply()
    }

    /// Rebuilds the session's engine from a live snapshot, optionally on a
    /// different matcher.
    pub fn migrate(&mut self, matcher: Option<&str>) -> io::Result<ClientReply> {
        match matcher {
            Some(m) => self.request(&format!("MIGRATE {m}")),
            None => self.request("MIGRATE"),
        }
    }

    /// Changes the session's scheduling class.
    pub fn prio(&mut self, class: &str) -> io::Result<ClientReply> {
        self.request(&format!("PRIO {class}"))
    }

    /// Fast-fails the session's queued commands and cuts an in-flight
    /// sliced `RUN` at its next slice boundary.
    pub fn cancel(&mut self) -> io::Result<ClientReply> {
        self.request("CANCEL")
    }

    pub fn close(&mut self) -> io::Result<ClientReply> {
        self.request("CLOSE")
    }

    pub fn shutdown(&mut self) -> io::Result<ClientReply> {
        self.request("SHUTDOWN")
    }
}
