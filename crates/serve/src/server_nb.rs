//! The reactor front-end: one thread owns accept, read, and write for
//! every connection.
//!
//! Where the thread front-end spends two OS threads per connection, this
//! module multiplexes all of them over a single epoll loop (the vendored
//! [`reactor`] crate). Each connection is a small state machine:
//!
//! * [`reactor::LineBuf`] reassembles lines across arbitrary read
//!   boundaries, and [`Mode`] tracks multi-line framing (`OPEN -` bodies,
//!   `BATCH`…`END`, `RESTORE`…`END`) exactly as the thread front-end's
//!   reader does, so a command split anywhere — even mid-body — parses
//!   identically.
//! * Replies must arrive in request order under pipelining even though
//!   commands execute on pool workers. Every request reserves a slot in
//!   the connection's `pending` queue *before* it is submitted; direct
//!   replies (and pool rejections) fill their slot immediately, worker
//!   replies come back through the shared [`Completions`] queue tagged
//!   with (connection id, sequence) and a [`reactor::Waker`] kick. Only
//!   the queue's *front* run of filled slots is flushed, which is the
//!   whole ordering argument.
//! * A slow client costs memory, not a thread — and the memory is capped:
//!   once the outbound buffer reaches [`ServeConfig::write_buf_cap`]
//!   (checked before each append, so one oversized reply still goes out),
//!   the connection is sent a final `ERR overloaded` and closed — or
//!   force-closed after [`OVERLOAD_GRACE`] if the client never reads even
//!   that, so a stalled peer cannot pin the fd and buffer indefinitely.
//!
//! Backpressure is unchanged from the thread front-end: the pool's
//! per-session inbox (`OVERLOADED`) and global run queue (`BUSY`) answer
//! through the same reserved slot, so the two front-ends are
//! byte-identical on the wire.
//!
//! [`ServeConfig::write_buf_cap`]: crate::server::ServeConfig::write_buf_cap

use crate::pool::{Completions, ReplyTx, SessionSlot, SubmitOutcome};
use crate::protocol::{parse_line, Line, Reply};
use crate::server::{self, Shared};
use crate::session::{BatchItem, Command};
use reactor::{Events, Interest, LineBuf, Poll, Token, Waker, WriteBuf};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Connection tokens start here; token = slab index + CONN_BASE.
const CONN_BASE: usize = 2;

/// Poll timeout: how often the loop checks the stop flag and the drain
/// deadline when no I/O is happening.
const TICK: Duration = Duration::from_millis(100);
/// After `SHUTDOWN`, how long connections get to flush queued replies.
const DRAIN_GRACE: Duration = Duration::from_secs(10);
/// How long an overloaded connection gets to drain its final
/// `ERR overloaded` before being force-closed — the reactor's analogue of
/// the thread front-end's `WRITE_STALL` write timeout. Without it, a
/// client that never reads pins the fd and up to `write_buf_cap` bytes
/// forever.
const OVERLOAD_GRACE: Duration = Duration::from_secs(5);
/// How often the loop sweeps for expired overload deadlines.
const OVERLOAD_SCAN: Duration = Duration::from_millis(500);
/// Reads per readable event before yielding back to the loop; leftover
/// data re-fires under level triggering, so this is fairness, not loss.
const READS_PER_EVENT: usize = 8;

/// Multi-line framing state, mirroring the thread front-end's nested read
/// loops. `Lines` is the top level; the body modes collect until their
/// terminator.
enum Mode {
    Lines,
    /// `OPEN -` inline program body (terminator: case-insensitive `END`).
    /// The matcher is resolved at the `OPEN` line, as the thread front-end
    /// does, so a bad matcher never enters body mode.
    OpenBody {
        program: String,
        kind: engine::MatcherKind,
        prio: Option<crate::pool::Priority>,
        src: String,
    },
    /// `RESTORE` body (terminator: exact-case `END`; the snapshot's own
    /// lowercase `end` stays in the body). Collected unconditionally —
    /// checks happen at the terminator, matching the thread front-end.
    RestoreBody {
        program: String,
        matcher: Option<String>,
        prio: Option<String>,
        lines: Vec<String>,
    },
    /// `BATCH` body. `line_no` counts every line after `BATCH` (blanks
    /// included) for error positions. A bad line aborts the batch
    /// immediately: the rest of the body parses as top-level commands,
    /// exactly like the thread front-end's early `break`.
    BatchBody {
        items: Vec<BatchItem>,
        line_no: usize,
    },
}

/// One reply slot in a connection's ordered queue. Slot *i* (from the
/// front) answers request `first_seq + i`.
enum PendingSlot {
    /// Command in flight on a pool worker.
    Waiting,
    /// Reply ready to flush (direct answers, rejections, completions).
    Filled(Reply),
}

struct Conn {
    /// Process-unique id; completions are tagged with it so replies for a
    /// closed connection are recognizably stale and dropped.
    id: u64,
    stream: TcpStream,
    rd: LineBuf,
    wr: WriteBuf,
    interest: Interest,
    mode: Mode,
    slot: Option<Arc<SessionSlot>>,
    pending: VecDeque<PendingSlot>,
    /// Sequence number of `pending.front()`.
    first_seq: u64,
    /// Sequence number the next request will take.
    next_seq: u64,
    /// No further input is parsed (EOF, `SHUTDOWN`, or server drain);
    /// the connection closes once `pending` and `wr` empty out.
    stop_input: bool,
    /// Hard failure: close without flushing.
    dead: bool,
    /// Slow client: final `ERR overloaded` queued, replies dropped.
    overloaded: bool,
    /// When `overloaded` was set plus [`OVERLOAD_GRACE`]: the connection
    /// is force-closed if the final `ERR` has not flushed by then.
    overload_deadline: Option<Instant>,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> Conn {
        Conn {
            id,
            stream,
            rd: LineBuf::new(),
            wr: WriteBuf::new(),
            interest: Interest::READABLE,
            mode: Mode::Lines,
            slot: None,
            pending: VecDeque::new(),
            first_seq: 0,
            next_seq: 0,
            stop_input: false,
            dead: false,
            overloaded: false,
            overload_deadline: None,
        }
    }

    /// Queues an immediately-known reply in order.
    fn direct(&mut self, reply: Reply) {
        self.next_seq += 1;
        self.pending.push_back(PendingSlot::Filled(reply));
    }

    /// Fills the slot for request `seq`, if it still exists.
    fn fill(&mut self, seq: u64, reply: Reply) {
        if seq < self.first_seq {
            return;
        }
        if let Some(slot) = self.pending.get_mut((seq - self.first_seq) as usize) {
            *slot = PendingSlot::Filled(reply);
        }
    }

    /// Done: everything flushed (or the connection is beyond saving).
    fn finished(&self) -> bool {
        self.dead
            || (self.overloaded && self.wr.is_empty())
            || (self.stop_input && self.pending.is_empty() && self.wr.is_empty())
    }
}

/// The reactor loop. Returns after `SHUTDOWN` once every connection has
/// drained (or the grace period expires).
pub(crate) fn run(listener: TcpListener, shared: &Arc<Shared>) -> io::Result<()> {
    // Thousands of connections need thousands of fds; best-effort raise.
    let _ = reactor::raise_nofile_limit(65536);
    listener.set_nonblocking(true)?;
    let poll = Poll::new()?;
    poll.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
    let completions = Arc::new(Completions::new(Waker::new(&poll, WAKER)?));

    let mut events = Events::with_capacity(1024);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut draining: Option<Instant> = None;
    let mut next_overload_scan = Instant::now() + OVERLOAD_SCAN;

    loop {
        poll.poll(&mut events, Some(TICK))?;
        if !events.is_empty() {
            if let Some(c) = &shared.counters {
                c.wakeups.inc();
            }
        }
        // Connections whose state changed this iteration; pumped (flush +
        // interest update) below. Duplicates are harmless.
        let mut touched: Vec<usize> = Vec::new();

        for ev in events.iter() {
            match ev.token() {
                LISTENER => {
                    if draining.is_some() {
                        continue;
                    }
                    loop {
                        let (stream, _) = match listener.accept() {
                            Ok(a) => a,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => break,
                        };
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let idx = free.pop().unwrap_or_else(|| {
                            conns.push(None);
                            conns.len() - 1
                        });
                        if poll
                            .register(
                                stream.as_raw_fd(),
                                Token(idx + CONN_BASE),
                                Interest::READABLE,
                            )
                            .is_err()
                        {
                            free.push(idx);
                            continue;
                        }
                        let id = next_id;
                        next_id += 1;
                        by_id.insert(id, idx);
                        conns[idx] = Some(Conn::new(id, stream));
                        if let Some(c) = &shared.counters {
                            c.accepts.inc();
                            c.connections_open.add(1);
                        }
                    }
                }
                WAKER => completions.drain_waker(),
                Token(t) => {
                    let idx = t - CONN_BASE;
                    let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                        continue;
                    };
                    if ev.is_readable() && !conn.stop_input && !conn.dead {
                        let mut eof = false;
                        for _ in 0..READS_PER_EVENT {
                            match conn.rd.read_from(&mut conn.stream) {
                                Ok(0) => {
                                    eof = true;
                                    break;
                                }
                                Ok(n) => {
                                    if let Some(c) = &shared.counters {
                                        c.read_bytes.add(n as u64);
                                    }
                                    if n < 4096 {
                                        break;
                                    }
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                                Err(_) => {
                                    conn.dead = true;
                                    break;
                                }
                            }
                        }
                        if !conn.dead {
                            // Complete lines received before EOF still
                            // execute (the thread front-end does the same:
                            // buffered lines drain before EOF is seen).
                            process(conn, shared, &completions);
                            if eof {
                                conn.stop_input = true;
                            }
                        }
                    }
                    touched.push(idx);
                }
            }
        }

        // Route worker replies into their connections' reply slots.
        for (cid, seq, reply) in completions.drain() {
            if let Some(&idx) = by_id.get(&cid) {
                if let Some(conn) = conns[idx].as_mut() {
                    conn.fill(seq, reply);
                    touched.push(idx);
                }
            }
        }

        // First iteration after SHUTDOWN: stop accepting, stop parsing,
        // give every connection the grace period to flush.
        if draining.is_none() && shared.stop.load(Ordering::SeqCst) {
            draining = Some(Instant::now());
            for (idx, c) in conns.iter_mut().enumerate() {
                if let Some(conn) = c {
                    conn.stop_input = true;
                    touched.push(idx);
                }
            }
        }

        // Sweep overload deadlines: an overloaded connection whose client
        // never drains the final `ERR` must not hold its fd and buffer
        // forever. Rate-limited so the sweep stays off the hot path.
        let now = Instant::now();
        if now >= next_overload_scan {
            next_overload_scan = now + OVERLOAD_SCAN;
            for (idx, c) in conns.iter_mut().enumerate() {
                if let Some(conn) = c {
                    if conn
                        .overload_deadline
                        .is_some_and(|d| now > d && !conn.wr.is_empty())
                    {
                        conn.dead = true;
                        touched.push(idx);
                    }
                }
            }
        }

        for idx in touched {
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            pump(conn, idx, shared, &poll);
            if conn.finished() {
                let _ = poll.deregister(conn.stream.as_raw_fd());
                by_id.remove(&conn.id);
                if let Some(c) = &shared.counters {
                    c.connections_open.add(-1);
                }
                conns[idx] = None;
                // Safe to recycle next iteration: the fd is deregistered,
                // so no later event in a future batch can name this slot.
                free.push(idx);
            }
        }

        if let Some(since) = draining {
            if by_id.is_empty() || since.elapsed() > DRAIN_GRACE {
                break;
            }
        }
    }
    Ok(())
}

/// Consumes every complete line buffered on the connection, advancing the
/// framing state machine and queueing commands/replies.
fn process(conn: &mut Conn, shared: &Arc<Shared>, completions: &Arc<Completions>) {
    while !conn.stop_input {
        let Some(line) = conn.rd.next_line() else {
            break;
        };
        match std::mem::replace(&mut conn.mode, Mode::Lines) {
            Mode::Lines => handle_line(conn, shared, completions, line),
            Mode::OpenBody {
                program,
                kind,
                prio,
                mut src,
            } => {
                if line.trim().eq_ignore_ascii_case("END") {
                    match server::open_session(shared, &program, kind, prio, Some(src)) {
                        Ok((slot, ok)) => {
                            conn.slot = Some(slot);
                            conn.direct(ok);
                        }
                        Err(e) => conn.direct(e),
                    }
                } else {
                    src.push_str(&line);
                    src.push('\n');
                    conn.mode = Mode::OpenBody {
                        program,
                        kind,
                        prio,
                        src,
                    };
                }
            }
            Mode::RestoreBody {
                program,
                matcher,
                prio,
                mut lines,
            } => {
                if line.trim() == "END" {
                    if conn.slot.is_some() {
                        conn.direct(Reply::Err("session already open (CLOSE first)".into()));
                    } else {
                        match server::resolve_matcher(shared, matcher.as_deref()).and_then(|kind| {
                            server::resolve_priority(prio.as_deref()).map(|p| (kind, p))
                        }) {
                            Ok((kind, p)) => {
                                match server::restore_session(shared, &program, kind, p, &lines) {
                                    Ok((slot, ok)) => {
                                        conn.slot = Some(slot);
                                        conn.direct(ok);
                                    }
                                    Err(e) => conn.direct(e),
                                }
                            }
                            Err(e) => conn.direct(Reply::Err(e)),
                        }
                    }
                } else {
                    lines.push(line);
                    conn.mode = Mode::RestoreBody {
                        program,
                        matcher,
                        prio,
                        lines,
                    };
                }
            }
            Mode::BatchBody {
                mut items,
                mut line_no,
            } => {
                line_no += 1;
                if line.trim().is_empty() {
                    conn.mode = Mode::BatchBody { items, line_no };
                    continue;
                }
                match parse_line(&line) {
                    Ok(Line::Assert(body)) => {
                        items.push(BatchItem::Assert {
                            line: line_no,
                            body,
                        });
                        conn.mode = Mode::BatchBody { items, line_no };
                    }
                    Ok(Line::Retract(tag)) => {
                        items.push(BatchItem::Retract { line: line_no, tag });
                        conn.mode = Mode::BatchBody { items, line_no };
                    }
                    Ok(Line::End) => {
                        if conn.slot.is_some() {
                            submit_cmd(conn, shared, completions, Command::Batch(items));
                        } else {
                            conn.direct(Reply::Err("no open session".into()));
                        }
                    }
                    Ok(other) => conn.direct(Reply::Err(format!(
                        "BATCH line {line_no}: only ASSERT/RETRACT allowed, got {other:?}"
                    ))),
                    Err(e) => conn.direct(Reply::Err(format!("BATCH line {line_no}: {e}"))),
                }
            }
        }
    }
}

/// Top-level (non-body) command dispatch; mirrors the thread front-end's
/// `conn_loop` arm for arm.
fn handle_line(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    completions: &Arc<Completions>,
    line: String,
) {
    if line.trim().is_empty() {
        return;
    }
    let parsed = match parse_line(&line) {
        Ok(l) => l,
        Err(e) => {
            conn.direct(Reply::Err(e));
            return;
        }
    };
    match parsed {
        Line::Open {
            program,
            matcher,
            prio,
        } => {
            if conn.slot.is_some() {
                conn.direct(Reply::Err("session already open (CLOSE first)".into()));
                // An inline body would follow; we cannot know, so leave it
                // to parse as commands and fail loudly.
                return;
            }
            let kind = match server::resolve_matcher(shared, matcher.as_deref()) {
                Ok(k) => k,
                Err(e) => {
                    conn.direct(Reply::Err(e));
                    return;
                }
            };
            let prio = match server::resolve_priority(prio.as_deref()) {
                Ok(p) => p,
                Err(e) => {
                    conn.direct(Reply::Err(e));
                    return;
                }
            };
            if program == "-" {
                conn.mode = Mode::OpenBody {
                    program,
                    kind,
                    prio,
                    src: String::new(),
                };
            } else {
                match server::open_session(shared, &program, kind, prio, None) {
                    Ok((slot, ok)) => {
                        conn.slot = Some(slot);
                        conn.direct(ok);
                    }
                    Err(e) => conn.direct(e),
                }
            }
        }
        Line::Restore {
            program,
            matcher,
            prio,
        } => {
            conn.mode = Mode::RestoreBody {
                program,
                matcher,
                prio,
                lines: Vec::new(),
            };
        }
        Line::BatchStart => {
            conn.mode = Mode::BatchBody {
                items: Vec::new(),
                line_no: 0,
            };
        }
        Line::End => conn.direct(Reply::Err("END outside BATCH".into())),
        Line::Metrics => {
            let reply = server::metrics_reply(shared);
            conn.direct(reply);
        }
        Line::Shutdown => {
            conn.direct(Reply::Ok("shutting down".into()));
            shared.stop.store(true, Ordering::SeqCst);
            // Pipelined commands after SHUTDOWN are discarded, as in the
            // thread front-end (its reader breaks immediately).
            conn.stop_input = true;
        }
        // Scheduling controls: answered inline so they bypass the session's
        // inbox — a CANCEL must work precisely when that inbox is backed up.
        Line::Prio(class) => {
            if let Some(slot) = &conn.slot {
                let reply = match server::resolve_priority(Some(&class)) {
                    Ok(Some(p)) => {
                        slot.set_priority(p);
                        Reply::Ok(format!("prio={}", p.name()))
                    }
                    Ok(None) => unreachable!("Some in, Some out"),
                    Err(e) => Reply::Err(e),
                };
                conn.direct(reply);
            } else {
                conn.direct(Reply::Err("no open session".into()));
            }
        }
        Line::Cancel => {
            if let Some(slot) = &conn.slot {
                let n = slot.cancel();
                conn.direct(Reply::Ok(format!("cancelled pending={n}")));
            } else {
                conn.direct(Reply::Err("no open session".into()));
            }
        }
        Line::Close => {
            // Release the slot only once the pool has the command: a
            // rejected CLOSE (`BUSY`) must leave the session open so the
            // client's retry still has something to close.
            if conn.slot.is_some() {
                if submit_cmd(conn, shared, completions, Command::Close) {
                    conn.slot = None;
                }
            } else {
                conn.direct(Reply::Err("no open session".into()));
            }
        }
        session_cmd => {
            let cmd = match session_cmd {
                Line::Assert(body) => Command::Assert(body),
                Line::Retract(tag) => Command::Retract(tag),
                Line::Run(n) => Command::Run(n),
                Line::Cs => Command::Cs,
                Line::Wm(class) => Command::Wm(class),
                Line::Stats => Command::Stats,
                Line::Fired => Command::Fired,
                Line::Snapshot => Command::Snapshot,
                Line::Migrate(m) => Command::Migrate(m),
                // Open/Restore/BatchStart/End/Metrics/Shutdown/Close
                // handled above.
                _ => unreachable!(),
            };
            if conn.slot.is_some() {
                submit_cmd(conn, shared, completions, cmd);
            } else {
                conn.direct(Reply::Err("no open session".into()));
            }
        }
    }
}

/// Reserves the next reply slot, then submits; a rejection fills the slot
/// on the spot so ordering holds. Returns whether the pool accepted.
fn submit_cmd(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    completions: &Arc<Completions>,
    cmd: Command,
) -> bool {
    let slot = conn.slot.clone().expect("caller checked for open session");
    let seq = conn.next_seq;
    conn.next_seq += 1;
    conn.pending.push_back(PendingSlot::Waiting);
    let tx = ReplyTx::Completion {
        queue: completions.clone(),
        conn: conn.id,
        seq,
    };
    let reject = match shared.pool.submit(&slot, cmd, tx) {
        SubmitOutcome::Accepted => return true,
        SubmitOutcome::Busy => Reply::Busy("run queue full; retry".into()),
        SubmitOutcome::Overloaded => Reply::Overloaded("session queue full; drain replies".into()),
        SubmitOutcome::ShuttingDown => Reply::Err("server shutting down".into()),
    };
    conn.fill(seq, reject);
    false
}

/// Moves the front run of filled replies into the write buffer (enforcing
/// the slow-client cap), flushes what the socket accepts, and keeps the
/// epoll interest in sync with what the connection actually waits on.
/// `idx` is the connection's slab index (its token is `idx + CONN_BASE`).
fn pump(conn: &mut Conn, idx: usize, shared: &Arc<Shared>, poll: &Poll) {
    while let Some(PendingSlot::Filled(_)) = conn.pending.front() {
        if conn.overloaded {
            conn.pending.clear();
            break;
        }
        if conn.wr.len() >= shared.cfg.write_buf_cap {
            // The client is not reading. Drop what it has not earned,
            // leave a diagnostic, and close once the buffer drains.
            if let Some(c) = &shared.counters {
                c.slow_client_closes.inc();
            }
            conn.overloaded = true;
            conn.overload_deadline = Some(Instant::now() + OVERLOAD_GRACE);
            conn.stop_input = true;
            conn.pending.clear();
            conn.wr.push(
                Reply::Err("overloaded: outbound buffer full; closing".into())
                    .to_string()
                    .as_bytes(),
            );
            break;
        }
        let Some(PendingSlot::Filled(reply)) = conn.pending.pop_front() else {
            unreachable!("front was Filled");
        };
        conn.first_seq += 1;
        conn.wr.push(reply.to_string().as_bytes());
    }

    if !conn.wr.is_empty() && !conn.dead {
        match conn.wr.write_to(&mut conn.stream) {
            Ok(n) => {
                if let Some(c) = &shared.counters {
                    c.write_bytes.add(n as u64);
                }
            }
            Err(_) => conn.dead = true,
        }
    }

    if conn.dead || conn.finished() {
        return;
    }
    let mut want = Interest::NONE;
    if !conn.stop_input {
        want = want | Interest::READABLE;
    }
    if !conn.wr.is_empty() {
        want = want | Interest::WRITABLE;
    }
    if want != conn.interest
        && poll
            .reregister(conn.stream.as_raw_fd(), Token(idx + CONN_BASE), want)
            .is_ok()
    {
        conn.interest = want;
    }
}
