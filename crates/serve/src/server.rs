//! The TCP front-end: accept handling, command framing between the wire
//! and the worker pool, and the pieces both front-ends share.
//!
//! Two front-ends implement the same line protocol:
//!
//! * **Threads** (this module's `conn_loop`): a reader thread and a writer
//!   thread per connection. The reader parses lines, frames `BATCH` and
//!   inline `OPEN -` bodies, and submits commands; replies must arrive in
//!   request order even though commands execute on pool workers, so the
//!   reader pushes a one-shot reply channel onto the writer's queue
//!   *before* submitting, and rejected submissions (`BUSY`/`OVERLOADED`)
//!   are answered by the reader through the same one-shot.
//! * **Reactor** ([`crate::server_nb`], the default): a single epoll
//!   thread owns accept/read/write for every connection and keeps the
//!   same ordering invariant with an explicit per-connection reply queue.
//!
//! Session construction (`OPEN`/`RESTORE`) is front-end-independent and
//! lives here as [`open_session`]/[`restore_session`] so both front-ends
//! produce byte-identical replies.
//!
//! Shutdown: `SHUTDOWN` stops the accept loop, connections wind down after
//! flushing queued replies, and the pool drains every queued command
//! before its workers exit.

use crate::pool::{Pool, PoolStats, Priority, ReplyTx, SessionSlot, SubmitOutcome};
use crate::protocol::{parse_line, Line, Reply};
use crate::registry::{matcher_kind, ProgramSpec, Registry};
use crate::session::{BatchItem, Command, Session};
use engine::{EngineLimits, MatcherKind};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked reads wake up to check the stop flag.
const READ_TICK: Duration = Duration::from_millis(50);

/// How long a blocked socket write may stall before the connection is
/// declared too slow and dropped (thread front-end; the reactor bounds
/// slowness by buffer size instead).
const WRITE_STALL: Duration = Duration::from_secs(5);

/// Which connection front-end the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontEnd {
    /// Two OS threads per connection (reader + writer). The original
    /// design, kept as the differential baseline behind
    /// `--front-end threads`.
    Threads,
    /// One reactor thread multiplexes every connection over epoll (the
    /// vendored `reactor` crate). Scales to tens of thousands of
    /// connections on a handful of threads.
    #[default]
    Reactor,
}

impl std::str::FromStr for FrontEnd {
    type Err = String;
    fn from_str(s: &str) -> Result<FrontEnd, String> {
        match s {
            "threads" => Ok(FrontEnd::Threads),
            "reactor" => Ok(FrontEnd::Reactor),
            other => Err(format!("unknown front-end `{other}` (threads|reactor)")),
        }
    }
}

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads executing session commands.
    pub workers: usize,
    /// Per-session inbox depth; overflow replies `OVERLOADED`.
    pub queue_depth: usize,
    /// Global run-queue capacity; overflow replies `BUSY`.
    pub run_queue_cap: usize,
    /// `RUN n` is clamped to this many cycles per command.
    pub max_cycles_per_run: u64,
    /// Per-session engine limits (working-memory size, lifetime cycles).
    pub limits: EngineLimits,
    /// Matcher used when `OPEN` names none.
    pub matcher: MatcherKind,
    /// Act-phase strategy for every session engine. `None` (the default)
    /// keeps the builder default — serial, unless the process-wide
    /// `OPS5_ACT` knob says otherwise.
    pub act: Option<engine::ActStrategy>,
    /// Corpus directory for [`Registry::with_builtins`].
    pub programs_dir: Option<PathBuf>,
    /// Observability: when enabled every session engine gets a metrics
    /// registry (per-node match profiling, phase histograms), the pool
    /// records per-command latencies, and `METRICS?` answers with the
    /// aggregated Prometheus text exposition.
    pub obs: obs::ObsConfig,
    /// Serve the same exposition over HTTP (`GET /metrics`) on this
    /// loopback port (0 = ephemeral). Implies nothing about `obs`; enable
    /// both for a scrapeable server.
    pub metrics_port: Option<u16>,
    /// Durability: when set, every session journals its changes and
    /// firings to `<dir>/session-<id>.log` (flushed per command) with a
    /// checkpoint snapshot at `<dir>/session-<id>.snap`, so a killed
    /// worker can be recovered via `RESTORE`.
    pub durability_dir: Option<PathBuf>,
    /// Firings between durability checkpoints (snapshot rewrite + log
    /// truncation). Ignored without `durability_dir`.
    pub checkpoint_every: u64,
    /// Connection front-end: reactor (default) or thread-per-connection.
    pub front_end: FrontEnd,
    /// Reactor front-end: per-connection outbound buffer cap in bytes.
    /// A client that stops reading while replies accumulate past this
    /// bound is sent a final `ERR overloaded` and closed. Checked before
    /// each reply is appended, so a single reply larger than the cap
    /// (a big `SNAPSHOT?`) still goes out.
    pub write_buf_cap: usize,
    /// Thread front-end: cap on replies queued for the writer but not yet
    /// flushed. Past it the connection is closed with `ERR overloaded` —
    /// the thread-mode analogue of `write_buf_cap`.
    pub max_pending_replies: usize,
    /// Deadline preemption: a `RUN n` executes in slices of at most this
    /// many cycles, requeueing the session between slices so one long run
    /// cannot monopolize a worker. `0` disables slicing (a `RUN` occupies
    /// its worker until it finishes, as before). The default honors the
    /// `OPS5_RUN_SLICE` environment variable.
    pub run_slice_cycles: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 16,
            run_queue_cap: 1024,
            max_cycles_per_run: 10_000,
            limits: EngineLimits::default(),
            matcher: MatcherKind::default(),
            act: None,
            programs_dir: None,
            obs: obs::ObsConfig::default(),
            metrics_port: None,
            durability_dir: None,
            checkpoint_every: 256,
            front_end: FrontEnd::default(),
            write_buf_cap: 256 * 1024,
            max_pending_replies: 4096,
            run_slice_cycles: std::env::var("OPS5_RUN_SLICE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        }
    }
}

/// Server-side observability state: the server-level registry (pool
/// command latencies) plus the roster of live sessions whose per-engine
/// registries `METRICS?` aggregates.
pub(crate) struct ServerObs {
    pub(crate) registry: Arc<obs::Registry>,
    pub(crate) sessions: std::sync::Mutex<Vec<std::sync::Weak<SessionSlot>>>,
}

/// Connection-level instrumentation, shared by both front-ends and
/// registered in the server registry so `METRICS?` and `/metrics` expose
/// it. Present only when observability is enabled.
pub(crate) struct ConnCounters {
    /// Currently open client connections (gauge).
    pub(crate) connections_open: Arc<obs::Gauge>,
    /// Connections accepted since start.
    pub(crate) accepts: Arc<obs::Counter>,
    /// Bytes read off client sockets by the reactor.
    pub(crate) read_bytes: Arc<obs::Counter>,
    /// Bytes written to client sockets by the reactor.
    pub(crate) write_bytes: Arc<obs::Counter>,
    /// Reactor poll returns that delivered at least one event.
    pub(crate) wakeups: Arc<obs::Counter>,
    /// Connections closed because the client fell too far behind.
    pub(crate) slow_client_closes: Arc<obs::Counter>,
}

impl ConnCounters {
    fn new(reg: &Arc<obs::Registry>) -> ConnCounters {
        ConnCounters {
            connections_open: reg.gauge("serve_connections_open", Vec::new()),
            accepts: reg.counter("serve_accepts_total", Vec::new()),
            read_bytes: reg.counter("reactor_read_bytes_total", Vec::new()),
            write_bytes: reg.counter("reactor_write_bytes_total", Vec::new()),
            wakeups: reg.counter("reactor_wakeups_total", Vec::new()),
            slow_client_closes: reg.counter("serve_slow_client_closes_total", Vec::new()),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    pub(crate) registry: Registry,
    pub(crate) pool: Pool,
    pub(crate) stop: AtomicBool,
    pub(crate) next_session: AtomicU64,
    pub(crate) addr: SocketAddr,
    pub(crate) obs: Option<ServerObs>,
    pub(crate) counters: Option<ConnCounters>,
    pub(crate) metrics_addr: Option<SocketAddr>,
}

/// A bound server, ready to [`run`](Server::run) or [`spawn`](Server::spawn).
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    shared: Arc<Shared>,
}

/// Handle to a spawned server: its address plus the accept-loop thread.
pub struct ServerHandle {
    pub addr: SocketAddr,
    /// Address of the HTTP metrics endpoint, when `metrics_port` was set.
    pub metrics_addr: Option<SocketAddr>,
    join: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// Waits for the server to shut down (a client must send `SHUTDOWN`).
    pub fn join(self) -> io::Result<()> {
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

impl Server {
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = Registry::with_builtins(cfg.programs_dir.as_deref());
        let server_obs = if cfg.obs.enabled {
            Some(ServerObs {
                registry: Arc::new(obs::Registry::new()),
                sessions: std::sync::Mutex::new(Vec::new()),
            })
        } else {
            None
        };
        let pool = Pool::new(
            cfg.workers,
            cfg.queue_depth,
            cfg.run_queue_cap,
            server_obs.as_ref().map(|o| &o.registry),
        );
        let metrics_listener = match cfg.metrics_port {
            Some(port) => Some(TcpListener::bind(("127.0.0.1", port))?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let counters = server_obs.as_ref().map(|o| ConnCounters::new(&o.registry));
        Ok(Server {
            listener,
            metrics_listener,
            shared: Arc::new(Shared {
                cfg,
                registry,
                pool,
                stop: AtomicBool::new(false),
                next_session: AtomicU64::new(1),
                addr,
                obs: server_obs,
                counters,
                metrics_addr,
            }),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Address of the HTTP metrics endpoint, when `metrics_port` was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.shared.metrics_addr
    }

    /// Serves until a `SHUTDOWN`, then returns once every connection has
    /// wound down and the pool has drained. Dispatches on
    /// [`ServeConfig::front_end`].
    pub fn run(self) -> io::Result<()> {
        let metrics_thread = self.metrics_listener.map(|l| {
            let shared = self.shared.clone();
            std::thread::spawn(move || serve_metrics_http(l, &shared))
        });
        let result = match self.shared.cfg.front_end {
            FrontEnd::Threads => run_threads(self.listener, &self.shared),
            FrontEnd::Reactor => crate::server_nb::run(self.listener, &self.shared),
        };
        // Either front-end sets the stop flag before returning, which is
        // what the metrics responder polls.
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = metrics_thread {
            let _ = h.join();
        }
        self.shared.pool.shutdown();
        result
    }

    /// Runs the accept loop on its own thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.shared.addr;
        let metrics_addr = self.shared.metrics_addr;
        let join = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            metrics_addr,
            join,
        }
    }

    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }
}

/// Thread-per-connection accept loop (the original front-end).
fn run_threads(listener: TcpListener, shared: &Arc<Shared>) -> io::Result<()> {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Request/response protocol: without NODELAY the kernel holds
        // small replies for Nagle coalescing and every round trip eats
        // a delayed-ACK timeout.
        let _ = stream.set_nodelay(true);
        if let Some(c) = &shared.counters {
            c.accepts.inc();
        }
        let shared = shared.clone();
        conns.push(std::thread::spawn(move || handle_conn(stream, &shared)));
        // Opportunistically reap finished connections so a long-lived
        // server does not accumulate handles.
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
    Ok(())
}

/// Timeout-aware line reader over the raw stream. `BufReader::read_line`
/// may leave partial data in an unspecified state across timeouts, so the
/// buffer is owned here and survives `WouldBlock` ticks intact.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> io::Result<LineReader> {
        stream.set_read_timeout(Some(READ_TICK))?;
        Ok(LineReader {
            stream,
            buf: Vec::new(),
        })
    }

    /// Next full line (without terminator), `None` on EOF or server stop.
    fn next_line(&mut self, stop: &AtomicBool) -> Option<String> {
        loop {
            if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = self.buf.drain(..=i).collect();
                let s = String::from_utf8_lossy(&raw);
                return Some(s.trim_end_matches(['\n', '\r']).to_string());
            }
            if stop.load(Ordering::SeqCst) {
                return None;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(_) => return None,
            }
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // A write that stalls this long means the client stopped reading;
    // erroring out lets the writer (and thus the connection) wind down
    // instead of blocking a thread on a dead socket forever.
    let _ = write_half.set_write_timeout(Some(WRITE_STALL));
    let mut reader = match LineReader::new(stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    if let Some(c) = &shared.counters {
        c.connections_open.add(1);
    }

    // Reply channels queue up here in request order; the writer resolves
    // them one at a time, so slow commands never reorder replies. The
    // shared depth counter is how the reader notices the writer falling
    // behind a client that pipelines without draining.
    let pending = Arc::new(AtomicUsize::new(0));
    let (writer_tx, writer_rx) = mpsc::channel::<mpsc::Receiver<Reply>>();
    let queue = ReplyQueue {
        tx: writer_tx,
        pending: pending.clone(),
    };
    let writer = std::thread::spawn(move || {
        let mut out = io::BufWriter::new(write_half);
        for rx in writer_rx {
            let Ok(reply) = rx.recv() else {
                pending.fetch_sub(1, Ordering::Relaxed);
                continue;
            };
            let res = out.write_all(reply.to_string().as_bytes());
            pending.fetch_sub(1, Ordering::Relaxed);
            if res.is_err() || out.flush().is_err() {
                break;
            }
        }
    });

    conn_loop(&mut reader, shared, &queue);
    // Dropping the queue ends the writer once every queued reply flushed.
    drop(queue);
    let _ = writer.join();
    if let Some(c) = &shared.counters {
        c.connections_open.add(-1);
    }
}

/// The reader's side of the per-connection writer queue: the channel of
/// one-shot reply receivers plus the count of replies not yet flushed.
struct ReplyQueue {
    tx: mpsc::Sender<mpsc::Receiver<Reply>>,
    pending: Arc<AtomicUsize>,
}

/// Answers a request on the spot, still through the ordered writer queue.
fn send_direct(queue: &ReplyQueue, reply: Reply) {
    let (tx, rx) = mpsc::sync_channel(1);
    let _ = tx.send(reply);
    queue.pending.fetch_add(1, Ordering::Relaxed);
    let _ = queue.tx.send(rx);
}

/// Queues a command; on rejection the backpressure reply takes the
/// command's reserved place in the writer queue. Returns whether the pool
/// actually accepted the command.
fn submit(queue: &ReplyQueue, shared: &Shared, slot: &Arc<SessionSlot>, cmd: Command) -> bool {
    let (tx, rx) = mpsc::sync_channel(1);
    queue.pending.fetch_add(1, Ordering::Relaxed);
    let _ = queue.tx.send(rx);
    let reject = match shared.pool.submit(slot, cmd, ReplyTx::Channel(tx.clone())) {
        SubmitOutcome::Accepted => None,
        SubmitOutcome::Busy => Some(Reply::Busy("run queue full; retry".into())),
        SubmitOutcome::Overloaded => Some(Reply::Overloaded(
            "session queue full; drain replies".into(),
        )),
        SubmitOutcome::ShuttingDown => Some(Reply::Err("server shutting down".into())),
    };
    match reject {
        Some(r) => {
            let _ = tx.send(r);
            false
        }
        None => true,
    }
}

/// Adds a freshly opened (or restored) session to the observability roster,
/// pruning dead sessions while the lock is held so a long-lived server's
/// roster stays bounded.
pub(crate) fn register_session(shared: &Shared, new_slot: &Arc<SessionSlot>) {
    if let Some(o) = &shared.obs {
        let mut sessions = o.sessions.lock().expect("obs sessions");
        sessions.retain(|w| w.upgrade().is_some());
        sessions.push(Arc::downgrade(new_slot));
    }
}

/// Resolves an optional `OPEN`/`RESTORE` matcher name against the
/// configured default. Both front-ends validate this *before* consuming an
/// inline body, so the error ordering on the wire is identical.
pub(crate) fn resolve_matcher(
    shared: &Shared,
    matcher: Option<&str>,
) -> Result<MatcherKind, String> {
    Ok(matcher
        .map(matcher_kind)
        .transpose()?
        .unwrap_or_else(|| shared.cfg.matcher.clone()))
}

/// Resolves an optional `PRIO=<class>` argument (or `PRIO` verb operand)
/// into a scheduling class. Both front-ends validate this *before*
/// consuming an inline body, like [`resolve_matcher`].
pub(crate) fn resolve_priority(prio: Option<&str>) -> Result<Option<Priority>, String> {
    match prio {
        None => Ok(None),
        Some(p) => Priority::from_name(p)
            .map(Some)
            .ok_or_else(|| format!("unknown priority `{p}` (high|normal|batch)")),
    }
}

/// Builds and registers a session for `OPEN`. `inline_src` carries the
/// collected body of `OPEN -`; otherwise `program` names a registry entry.
/// Returns the slot plus the `OK` reply, or the error reply — identical
/// text from either front-end. A `prio` of `Some` puts the slot in that
/// scheduling class and is echoed in the reply.
pub(crate) fn open_session(
    shared: &Shared,
    program: &str,
    kind: MatcherKind,
    prio: Option<Priority>,
    inline_src: Option<String>,
) -> Result<(Arc<SessionSlot>, Reply), Reply> {
    let inline;
    let spec: &ProgramSpec = match inline_src {
        Some(src) => {
            inline = ProgramSpec::from_source(src);
            &inline
        }
        None => shared.registry.get(program).ok_or_else(|| {
            Reply::Err(format!(
                "unknown program `{program}` (have: {})",
                shared.registry.names().join(" ")
            ))
        })?,
    };
    let mut engine = spec
        .build(kind.clone(), shared.cfg.limits, shared.cfg.act)
        .map_err(|e| Reply::Err(e.to_string()))?;
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let name = engine.matcher().name().to_string();
    if shared.obs.is_some() {
        engine.enable_obs(obs::ObsConfig::enabled());
    }
    let mut session = Session::new(id, program, engine, kind, shared.cfg.max_cycles_per_run);
    session.set_run_slice(shared.cfg.run_slice_cycles);
    if let Some(dir) = &shared.cfg.durability_dir {
        session
            .attach_durability(dir, shared.cfg.checkpoint_every)
            .map_err(|e| Reply::Err(format!("durability: {e}")))?;
    }
    let new_slot = SessionSlot::new(session);
    let prio_note = match prio {
        Some(p) => {
            new_slot.set_priority(p);
            format!(" prio={}", p.name())
        }
        None => String::new(),
    };
    register_session(shared, &new_slot);
    Ok((
        new_slot,
        Reply::Ok(format!(
            "session {id} program={program} matcher={name}{prio_note}"
        )),
    ))
}

/// Rebuilds a session from a `RESTORE` body (snapshot text, then change
/// log; the snapshot's own terminator is lowercase `end`). Shared by both
/// front-ends for identical reply text.
pub(crate) fn restore_session(
    shared: &Shared,
    program: &str,
    kind: MatcherKind,
    prio: Option<Priority>,
    body: &[String],
) -> Result<(Arc<SessionSlot>, Reply), Reply> {
    let spec = shared.registry.get(program).ok_or_else(|| {
        Reply::Err(format!(
            "unknown program `{program}` (have: {})",
            shared.registry.names().join(" ")
        ))
    })?;
    let split = body
        .iter()
        .position(|l| l.trim() == "end")
        .ok_or_else(|| Reply::Err("RESTORE body has no snapshot terminator `end`".into()))?;
    let snap_text = body[..=split].join("\n");
    let log_text = body[split + 1..].join("\n");
    let mut engine = spec
        .build_empty(kind.clone(), shared.cfg.limits, shared.cfg.act)
        .map_err(|e| Reply::Err(e.to_string()))?;
    if shared.obs.is_some() {
        engine.enable_obs(obs::ObsConfig::enabled());
    }
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let (mut session, replayed) = Session::restore(
        id,
        program,
        engine,
        kind,
        shared.cfg.max_cycles_per_run,
        &snap_text,
        &log_text,
    )
    .map_err(Reply::Err)?;
    let name = session.engine().matcher().name().to_string();
    let cycles = session.engine().cycles();
    session.set_run_slice(shared.cfg.run_slice_cycles);
    if let Some(dir) = &shared.cfg.durability_dir {
        session
            .attach_durability(dir, shared.cfg.checkpoint_every)
            .map_err(|e| Reply::Err(format!("durability: {e}")))?;
    }
    let new_slot = SessionSlot::new(session);
    let prio_note = match prio {
        Some(p) => {
            new_slot.set_priority(p);
            format!(" prio={}", p.name())
        }
        None => String::new(),
    };
    register_session(shared, &new_slot);
    Ok((
        new_slot,
        Reply::Ok(format!(
            "session {id} program={program} matcher={name} \
             replayed={replayed} cycles={cycles}{prio_note}"
        )),
    ))
}

/// The `METRICS?` reply — works without an open session.
pub(crate) fn metrics_reply(shared: &Shared) -> Reply {
    match &shared.obs {
        Some(_) => {
            let text = render_metrics(shared);
            let lines: Vec<String> = text.lines().map(str::to_string).collect();
            Reply::Multi {
                head: format!("METRICS {}", lines.len()),
                lines,
            }
        }
        None => Reply::Err("metrics disabled (start with --metrics or obs enabled)".into()),
    }
}

fn conn_loop(reader: &mut LineReader, shared: &Arc<Shared>, writer_tx: &ReplyQueue) {
    let mut slot: Option<Arc<SessionSlot>> = None;
    while let Some(line) = reader.next_line(&shared.stop) {
        // A client that pipelines requests without draining replies
        // eventually exhausts its reply backlog allowance; close it with a
        // final diagnostic rather than queueing without bound.
        if writer_tx.pending.load(Ordering::Relaxed) > shared.cfg.max_pending_replies {
            if let Some(c) = &shared.counters {
                c.slow_client_closes.inc();
            }
            send_direct(
                writer_tx,
                Reply::Err("overloaded: reply backlog exceeded; closing".into()),
            );
            return;
        }
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match parse_line(&line) {
            Ok(l) => l,
            Err(e) => {
                send_direct(writer_tx, Reply::Err(e));
                continue;
            }
        };
        match parsed {
            Line::Open {
                program,
                matcher,
                prio,
            } => {
                if slot.is_some() {
                    send_direct(
                        writer_tx,
                        Reply::Err("session already open (CLOSE first)".into()),
                    );
                    // An inline body would follow; we cannot know, so leave
                    // it to parse as commands and fail loudly.
                    continue;
                }
                let kind = match resolve_matcher(shared, matcher.as_deref()) {
                    Ok(k) => k,
                    Err(e) => {
                        send_direct(writer_tx, Reply::Err(e));
                        continue;
                    }
                };
                let prio = match resolve_priority(prio.as_deref()) {
                    Ok(p) => p,
                    Err(e) => {
                        send_direct(writer_tx, Reply::Err(e));
                        continue;
                    }
                };
                let inline_src = if program == "-" {
                    let mut src = String::new();
                    loop {
                        match reader.next_line(&shared.stop) {
                            Some(l) if l.trim().eq_ignore_ascii_case("END") => break,
                            Some(l) => {
                                src.push_str(&l);
                                src.push('\n');
                            }
                            None => return,
                        }
                    }
                    Some(src)
                } else {
                    None
                };
                match open_session(shared, &program, kind, prio, inline_src) {
                    Ok((new_slot, ok)) => {
                        slot = Some(new_slot);
                        send_direct(writer_tx, ok);
                    }
                    Err(e) => send_direct(writer_tx, e),
                }
            }
            Line::Restore {
                program,
                matcher,
                prio,
            } => {
                // Consume the body framing unconditionally so a failed
                // RESTORE does not leave its payload to parse as commands.
                let mut body = Vec::new();
                let body = loop {
                    match reader.next_line(&shared.stop) {
                        // Exact-case match: the snapshot text's own
                        // terminator is lowercase `end` and must stay in
                        // the body.
                        Some(l) if l.trim() == "END" => break body,
                        Some(l) => body.push(l),
                        None => return,
                    }
                };
                if slot.is_some() {
                    send_direct(
                        writer_tx,
                        Reply::Err("session already open (CLOSE first)".into()),
                    );
                    continue;
                }
                let kind = match resolve_matcher(shared, matcher.as_deref()) {
                    Ok(k) => k,
                    Err(e) => {
                        send_direct(writer_tx, Reply::Err(e));
                        continue;
                    }
                };
                let prio = match resolve_priority(prio.as_deref()) {
                    Ok(p) => p,
                    Err(e) => {
                        send_direct(writer_tx, Reply::Err(e));
                        continue;
                    }
                };
                match restore_session(shared, &program, kind, prio, &body) {
                    Ok((new_slot, ok)) => {
                        slot = Some(new_slot);
                        send_direct(writer_tx, ok);
                    }
                    Err(e) => send_direct(writer_tx, e),
                }
            }
            Line::BatchStart => {
                let mut items = Vec::new();
                // 1-based position within the batch body; counts every line
                // after BATCH (blanks included) so errors point at the line
                // the client actually sent.
                let mut line_no = 0usize;
                let reply = loop {
                    match reader.next_line(&shared.stop) {
                        Some(l) => {
                            line_no += 1;
                            if l.trim().is_empty() {
                                continue;
                            }
                            match parse_line(&l) {
                                Ok(Line::Assert(body)) => items.push(BatchItem::Assert {
                                    line: line_no,
                                    body,
                                }),
                                Ok(Line::Retract(tag)) => {
                                    items.push(BatchItem::Retract { line: line_no, tag })
                                }
                                Ok(Line::End) => break None,
                                Ok(other) => {
                                    break Some(Reply::Err(format!(
                                        "BATCH line {line_no}: only ASSERT/RETRACT allowed, \
                                         got {other:?}"
                                    )))
                                }
                                Err(e) => {
                                    break Some(Reply::Err(format!("BATCH line {line_no}: {e}")))
                                }
                            }
                        }
                        None => return,
                    }
                };
                match (reply, &slot) {
                    (Some(err), _) => send_direct(writer_tx, err),
                    (None, Some(s)) => {
                        submit(writer_tx, shared, s, Command::Batch(items));
                    }
                    (None, None) => send_direct(writer_tx, Reply::Err("no open session".into())),
                }
            }
            Line::End => send_direct(writer_tx, Reply::Err("END outside BATCH".into())),
            // Server-wide: answered by the reader itself (works without an
            // open session), still through the ordered writer queue.
            Line::Metrics => send_direct(writer_tx, metrics_reply(shared)),
            Line::Shutdown => {
                send_direct(writer_tx, Reply::Ok("shutting down".into()));
                shared.stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it can observe the flag.
                let _ = TcpStream::connect(shared.addr);
                break;
            }
            // Scheduling controls: answered by the reader itself so they
            // bypass the session's inbox — a CANCEL must work precisely
            // when that inbox is backed up.
            Line::Prio(class) => match &slot {
                Some(s) => {
                    let reply = match resolve_priority(Some(&class)) {
                        Ok(Some(p)) => {
                            s.set_priority(p);
                            Reply::Ok(format!("prio={}", p.name()))
                        }
                        Ok(None) => unreachable!("Some in, Some out"),
                        Err(e) => Reply::Err(e),
                    };
                    send_direct(writer_tx, reply);
                }
                None => send_direct(writer_tx, Reply::Err("no open session".into())),
            },
            Line::Cancel => match &slot {
                Some(s) => {
                    let n = s.cancel();
                    send_direct(writer_tx, Reply::Ok(format!("cancelled pending={n}")));
                }
                None => send_direct(writer_tx, Reply::Err("no open session".into())),
            },
            Line::Close => match &slot {
                // Release the slot only once the pool has the command: a
                // rejected CLOSE (`BUSY`) must leave the session open so the
                // client's retry still has something to close.
                Some(s) => {
                    if submit(writer_tx, shared, s, Command::Close) {
                        slot = None;
                    }
                }
                None => send_direct(writer_tx, Reply::Err("no open session".into())),
            },
            session_cmd => {
                let cmd = match session_cmd {
                    Line::Assert(body) => Command::Assert(body),
                    Line::Retract(tag) => Command::Retract(tag),
                    Line::Run(n) => Command::Run(n),
                    Line::Cs => Command::Cs,
                    Line::Wm(class) => Command::Wm(class),
                    Line::Stats => Command::Stats,
                    Line::Fired => Command::Fired,
                    Line::Snapshot => Command::Snapshot,
                    Line::Migrate(m) => Command::Migrate(m),
                    // Open/Restore/BatchStart/End/Shutdown/Close handled
                    // above.
                    _ => unreachable!(),
                };
                match &slot {
                    Some(s) => {
                        submit(writer_tx, shared, s, cmd);
                    }
                    None => send_direct(writer_tx, Reply::Err("no open session".into())),
                }
            }
        }
    }
}

/// Builds the aggregated Prometheus text exposition: the server-level
/// registry (pool command latencies) merged with every live session's
/// engine registry — labeled `session`/`program`/`matcher` so same-named
/// series stay distinguishable — plus synthetic per-join-node counters for
/// each session's ten hottest join nodes, labeled with the join id and the
/// owning production.
pub(crate) fn render_metrics(shared: &Shared) -> String {
    let Some(o) = &shared.obs else {
        return String::new();
    };
    let mut snap = o.registry.snapshot();
    let slots: Vec<Arc<SessionSlot>> = {
        let mut sessions = o.sessions.lock().expect("obs sessions");
        sessions.retain(|w| w.upgrade().is_some());
        sessions.iter().filter_map(|w| w.upgrade()).collect()
    };
    for slot in slots {
        slot.with_session(|s| {
            let sid = s.id.to_string();
            let engine = s.engine();
            let matcher = engine.matcher().name().to_string();
            if let Some(reg) = engine.obs_registry() {
                snap.merge(
                    reg.snapshot()
                        .with_label("session", &sid)
                        .with_label("program", &s.program)
                        .with_label("matcher", &matcher),
                );
            }
            if let Some(profile) = engine.node_profile() {
                let net = engine.network();
                let mut hot = obs::Snapshot::default();
                for node in profile.top_n(10) {
                    let j = &net.joins[node.join];
                    let labels: obs::Labels = vec![
                        ("join".to_string(), node.join.to_string()),
                        ("prod".to_string(), net.prod_names[j.prod.index()].clone()),
                        ("ce".to_string(), j.ce_index.to_string()),
                        ("session".to_string(), sid.clone()),
                        ("matcher".to_string(), matcher.clone()),
                    ];
                    hot.metrics.push(obs::MetricValue {
                        name: "rete_join_activations_total".to_string(),
                        labels: labels.clone(),
                        data: obs::MetricData::Counter(node.activations),
                    });
                    hot.metrics.push(obs::MetricValue {
                        name: "rete_join_scanned_total".to_string(),
                        labels,
                        data: obs::MetricData::Counter(node.scanned),
                    });
                }
                snap.merge(hot);
            }
        });
    }
    let mut out = String::new();
    snap.render_prometheus(&mut out);
    out
}

/// Minimal HTTP/1.0 responder for the metrics endpoint: nonblocking accept
/// polling the stop flag, one short-lived connection per scrape. Every path
/// answers with the exposition, so `GET /metrics` and `GET /` both work.
fn serve_metrics_http(listener: TcpListener, shared: &Arc<Shared>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(READ_TICK));
                // Drain what the client sent of the request head; the body
                // of the reply does not depend on it.
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let body = render_metrics(shared);
                let resp = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(resp.as_bytes());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(READ_TICK);
            }
            Err(_) => std::thread::sleep(READ_TICK),
        }
    }
}
