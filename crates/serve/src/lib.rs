//! # serve — a multi-session production-system server
//!
//! The paper parallelizes *one* OPS5 program across Multimax processors;
//! this crate multiplexes *many* independent programs over a bounded worker
//! pool, the complementary production-scale deployment shape: a
//! recognize-act service where clients open sessions, stream working-memory
//! changes, and run cycles over the wire.
//!
//! Layers, bottom up:
//!
//! * [`registry`] — named program profiles (`programs/*.ops` + the
//!   generated Rubik workload); each `OPEN` builds a fresh, fully
//!   independent [`engine::Engine`] (own symbol table, network, matcher).
//! * [`session`] — the command executor around one engine. Ingestion is
//!   staged: `ASSERT`/`RETRACT` take effect in working memory immediately
//!   but reach the matcher as **one [`ops5::ChangeBatch`] per `RUN`**, the
//!   batched-ingestion path the engine grew for this layer.
//! * [`pool`] — a fixed worker-thread pool with actor-style scheduling
//!   (one command per pop) and two-level backpressure: a full per-session
//!   inbox replies `OVERLOADED`, a saturated global run queue replies
//!   `BUSY`. Shutdown drains every queued command before workers exit.
//! * [`server`] — the TCP front-end (`std::net` only): line protocol,
//!   reply ordering under pipelining, graceful `SHUTDOWN`. Two
//!   interchangeable connection front-ends implement it: the default
//!   single-threaded epoll reactor ([`server_nb`], over the vendored
//!   `reactor` crate) and the original thread-per-connection design
//!   (`--front-end threads`), kept as the differential baseline.
//! * [`router`] — `ops5-router`: a consistent-hash session-sharding proxy
//!   that spreads sessions across several `ops5-serve` backends and
//!   live-migrates them (`SNAPSHOT?`/`RESTORE`) when a backend drains.
//! * [`client`] — a blocking client used by `bench`'s `serve_load` harness
//!   and the integration tests.
//!
//! See [`protocol`] for the wire grammar.

pub mod client;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod router;
pub mod server;
mod server_nb;
pub mod session;

pub use client::{Client, ClientReply};
pub use pool::{Pool, PoolStats, Priority, SessionSlot, SubmitOutcome};
pub use protocol::{parse_line, Line, Reply};
pub use registry::{matcher_kind, ProgramSpec, Registry};
pub use router::{Router, RouterConfig, RouterHandle};
pub use server::{FrontEnd, ServeConfig, Server, ServerHandle};
pub use session::{BatchItem, Command, Exec, Session};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end over a real socket: open, stage, run, inspect, close,
    /// shut down.
    #[test]
    fn socket_roundtrip_and_shutdown() {
        let mut cfg = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        cfg.programs_dir = None;
        let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
        let mut c = Client::connect(handle.addr).unwrap();

        let src = "(literalize item n)
                   (literalize sum total)
                   (p add (item ^n <n>) (sum ^total <t>)
                      --> (remove 1) (modify 2 ^total (compute <t> + <n>)))";
        let open = c
            .open_source(src, Some("vs2"))
            .unwrap()
            .expect_ok()
            .unwrap();
        assert!(open.contains("matcher=vs2"), "{open}");

        c.request("ASSERT sum ^total 0")
            .unwrap()
            .expect_ok()
            .unwrap();
        let t1 = c.assert_wme("item ^n 3").unwrap().unwrap();
        let t2 = c.assert_wme("item ^n 4").unwrap().unwrap();
        assert!(t2 > t1);

        let run = c.run(100).unwrap().expect_ok().unwrap();
        assert!(run.contains("cycles=2"), "{run}");
        assert!(run.contains("reason=quiescent"), "{run}");

        let wm = c.wm(Some("sum")).unwrap().expect_lines().unwrap();
        assert_eq!(wm.len(), 1);
        assert!(wm[0].contains("^total 7"), "{wm:?}");

        let fired = c.fired().unwrap().expect_lines().unwrap();
        assert_eq!(fired.len(), 2);

        c.close().unwrap().expect_ok().unwrap();
        assert!(matches!(c.run(1).unwrap(), ClientReply::Err(_)));

        c.shutdown().unwrap().expect_ok().unwrap();
        handle.join().unwrap();
    }

    /// Two connections get fully independent sessions of the same program.
    #[test]
    fn sessions_are_isolated() {
        let handle = Server::bind("127.0.0.1:0", ServeConfig::default())
            .unwrap()
            .spawn();
        let src = "(literalize x v)\n(p r (x ^v <v>) --> (remove 1))";
        let mut a = Client::connect(handle.addr).unwrap();
        let mut b = Client::connect(handle.addr).unwrap();
        a.open_source(src, None).unwrap().expect_ok().unwrap();
        b.open_source(src, None).unwrap().expect_ok().unwrap();
        a.assert_wme("x ^v 1").unwrap().unwrap();
        a.assert_wme("x ^v 2").unwrap().unwrap();
        b.assert_wme("x ^v 9").unwrap().unwrap();
        // A's staged elements are invisible to B.
        let wm_b = b.wm(None).unwrap().expect_lines().unwrap();
        assert_eq!(wm_b.len(), 1, "{wm_b:?}");
        a.run(10).unwrap().expect_ok().unwrap();
        let stats_b = b.stats().unwrap().expect_ok().unwrap();
        assert!(stats_b.contains("cycles=0"), "{stats_b}");
        let mut s = Client::connect(handle.addr).unwrap();
        s.shutdown().unwrap().expect_ok().unwrap();
        handle.join().unwrap();
    }

    /// Pipelined requests come back in order, and protocol errors do not
    /// desynchronize the stream.
    #[test]
    fn pipelined_replies_stay_ordered() {
        // Deep inbox: this test wants ordering, not backpressure.
        let cfg = ServeConfig {
            queue_depth: 256,
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
        let mut c = Client::connect(handle.addr).unwrap();
        c.open_source("(literalize x v)\n(p r (x ^v 0) --> (halt))", None)
            .unwrap()
            .expect_ok()
            .unwrap();
        for i in 0..20 {
            c.send_line(&format!("ASSERT x ^v {i}")).unwrap();
        }
        c.send_line("FROBNICATE").unwrap();
        c.send_line("STATS?").unwrap();
        let mut tags = Vec::new();
        for _ in 0..20 {
            tags.push(
                c.read_reply()
                    .unwrap()
                    .expect_ok()
                    .unwrap()
                    .parse::<u64>()
                    .unwrap(),
            );
        }
        assert!(tags.windows(2).all(|w| w[0] < w[1]), "{tags:?}");
        assert!(matches!(c.read_reply().unwrap(), ClientReply::Err(_)));
        let stats = c.read_reply().unwrap().expect_ok().unwrap();
        assert!(stats.contains("staged=20"), "{stats}");
        c.shutdown().unwrap().expect_ok().unwrap();
        handle.join().unwrap();
    }

    /// A `CLOSE` bounced by the run queue (`BUSY`) must leave the session
    /// open so the retry can still close it — regression test for the slot
    /// being dropped before the pool accepted the command.
    #[test]
    fn close_survives_busy_rejection() {
        let cfg = ServeConfig {
            workers: 1,
            run_queue_cap: 1,
            queue_depth: 4,
            max_cycles_per_run: 200_000,
            // The wedge must hold its worker for the whole RUN, even when
            // the environment (CI's sched-smoke job) turns slicing on.
            run_slice_cycles: 0,
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
        let spin = "(literalize c n)\n(p spin (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))";

        // Wedge the only worker on a long spin run...
        let mut a = Client::connect(handle.addr).unwrap();
        a.open_source(spin, Some("vs2"))
            .unwrap()
            .expect_ok()
            .unwrap();
        a.assert_wme("c ^n 0").unwrap().unwrap();
        a.send_line("RUN 200000").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));

        // ...and fill the (capacity-1) run queue with a second session's
        // pending command, pipelined so this thread does not block on it.
        let mut filler = Client::connect(handle.addr).unwrap();
        filler
            .open_source(spin, Some("vs2"))
            .unwrap()
            .expect_ok()
            .unwrap();
        filler.send_line("ASSERT c ^n 0").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));

        // CLOSE now gets BUSY; the retry must find the session still open.
        let mut b = Client::connect(handle.addr).unwrap();
        b.open_source(spin, Some("vs2"))
            .unwrap()
            .expect_ok()
            .unwrap();
        let mut busy = 0;
        loop {
            match b.request("CLOSE").unwrap() {
                ClientReply::Ok(_) => break,
                r if r.is_backpressure() => {
                    busy += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                other => panic!("CLOSE must never error across BUSY: {other:?}"),
            }
        }
        assert!(busy > 0, "run queue never saturated; wedge too short");

        a.read_reply().unwrap().expect_ok().unwrap();
        filler.read_reply().unwrap().expect_ok().unwrap();
        b.shutdown().unwrap().expect_ok().unwrap();
        handle.join().unwrap();
    }

    const ADDER_SRC: &str = "(literalize item n)
                             (literalize sum total)
                             (p add (item ^n <n>) (sum ^total <t>)
                                --> (remove 1) (modify 2 ^total (compute <t> + <n>)))";

    /// Writes the adder program into a fresh corpus dir so `RESTORE` (which
    /// only accepts registered programs) can rebuild it.
    fn adder_corpus(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("serve-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("adder.ops"), ADDER_SRC).unwrap();
        dir
    }

    fn stage_adder_work(c: &mut Client) {
        c.request("ASSERT sum ^total 0")
            .unwrap()
            .expect_ok()
            .unwrap();
        for i in 1..=5 {
            c.assert_wme(&format!("item ^n {i}")).unwrap().unwrap();
        }
    }

    /// `SNAPSHOT?` mid-run, `RESTORE` into a fresh session on a *different*
    /// matcher, and the continued run converges to the same working memory
    /// and the same complete firing history.
    #[test]
    fn snapshot_restore_roundtrip_over_the_wire() {
        let cfg = ServeConfig {
            programs_dir: Some(adder_corpus("snap")),
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();

        let mut a = Client::connect(handle.addr).unwrap();
        a.open("adder", Some("vs2")).unwrap().expect_ok().unwrap();
        stage_adder_work(&mut a);
        let run = a.run(2).unwrap().expect_ok().unwrap();
        assert!(run.contains("cycles=2"), "{run}");
        let snap_lines = a.snapshot().unwrap().expect_lines().unwrap();
        assert_eq!(snap_lines.last().map(String::as_str), Some("end"));
        // Reference: the uninterrupted session runs to quiescence.
        a.run(100).unwrap().expect_ok().unwrap();
        let wm_ref = a.wm(None).unwrap().expect_lines().unwrap();
        let fired_ref = a.fired().unwrap().expect_lines().unwrap();
        assert_eq!(fired_ref.len(), 5, "{fired_ref:?}");
        a.close().unwrap().expect_ok().unwrap();

        let mut b = Client::connect(handle.addr).unwrap();
        let ok = b
            .restore("adder", Some("lisp"), &snap_lines.join("\n"))
            .unwrap()
            .expect_ok()
            .unwrap();
        assert!(ok.contains("matcher=lisp"), "{ok}");
        assert!(ok.contains("replayed=0"), "{ok}");
        b.run(100).unwrap().expect_ok().unwrap();
        assert_eq!(b.wm(None).unwrap().expect_lines().unwrap(), wm_ref);
        assert_eq!(b.fired().unwrap().expect_lines().unwrap(), fired_ref);

        b.shutdown().unwrap().expect_ok().unwrap();
        handle.join().unwrap();
    }

    /// `MIGRATE` rebuilds the live engine on another matcher without losing
    /// working memory, staged changes, or the firing history.
    #[test]
    fn migrate_preserves_state_across_matchers() {
        let handle = Server::bind("127.0.0.1:0", ServeConfig::default())
            .unwrap()
            .spawn();
        let mut c = Client::connect(handle.addr).unwrap();
        c.open_source(ADDER_SRC, Some("vs1"))
            .unwrap()
            .expect_ok()
            .unwrap();
        stage_adder_work(&mut c);
        c.run(2).unwrap().expect_ok().unwrap();
        // One staged change in flight across the migration.
        c.assert_wme("item ^n 10").unwrap().unwrap();
        let ok = c.migrate(Some("psm")).unwrap().expect_ok().unwrap();
        assert!(ok.contains("matcher=psm"), "{ok}");
        assert!(ok.contains("cycles=2"), "{ok}");
        let run = c.run(100).unwrap().expect_ok().unwrap();
        assert!(run.contains("reason=quiescent"), "{run}");
        let wm = c.wm(Some("sum")).unwrap().expect_lines().unwrap();
        assert!(wm[0].contains("^total 25"), "{wm:?}");
        assert_eq!(c.fired().unwrap().expect_lines().unwrap().len(), 6);
        // Unknown matcher is an error, and the session survives it.
        assert!(matches!(
            c.migrate(Some("frob")).unwrap(),
            ClientReply::Err(_)
        ));
        c.stats().unwrap().expect_ok().unwrap();
        c.shutdown().unwrap().expect_ok().unwrap();
        handle.join().unwrap();
    }

    /// With a durability dir configured, a connection that vanishes without
    /// `CLOSE` (a killed worker) leaves snapshot + change-log files that
    /// `RESTORE` turns back into the exact session.
    #[test]
    fn durability_files_recover_a_killed_session() {
        let programs = adder_corpus("durable-programs");
        let state =
            std::env::temp_dir().join(format!("serve-durable-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state);
        let cfg = ServeConfig {
            programs_dir: Some(programs),
            durability_dir: Some(state.clone()),
            // Low water mark so the mid-life checkpoint path runs too.
            checkpoint_every: 4,
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();

        {
            let mut c = Client::connect(handle.addr).unwrap();
            c.open("adder", Some("vs2")).unwrap().expect_ok().unwrap();
            stage_adder_work(&mut c);
            c.run(2).unwrap().expect_ok().unwrap();
            // 4 cumulative fires: crosses checkpoint_every, truncating the log.
            c.run(2).unwrap().expect_ok().unwrap();
            // Dropped without CLOSE: the simulated kill. Every executed
            // command's records are already on disk.
        }

        let snap = std::fs::read_to_string(Session::snap_path(&state, 1)).unwrap();
        let log = std::fs::read_to_string(Session::log_path(&state, 1)).unwrap();
        assert!(
            log.is_empty(),
            "checkpoint must have truncated the log: {log:?}"
        );

        let mut c = Client::connect(handle.addr).unwrap();
        let ok = c
            .restore("adder", Some("vs2"), &format!("{snap}{log}"))
            .unwrap()
            .expect_ok()
            .unwrap();
        assert!(ok.contains("cycles=4"), "{ok}");
        c.run(100).unwrap().expect_ok().unwrap();
        let wm = c.wm(Some("sum")).unwrap().expect_lines().unwrap();
        assert!(wm[0].contains("^total 15"), "{wm:?}");
        assert_eq!(c.fired().unwrap().expect_lines().unwrap().len(), 5);
        c.shutdown().unwrap().expect_ok().unwrap();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&state);
    }

    /// BATCH stages everything as one command and replies once.
    #[test]
    fn batch_is_one_command() {
        let handle = Server::bind("127.0.0.1:0", ServeConfig::default())
            .unwrap()
            .spawn();
        let mut c = Client::connect(handle.addr).unwrap();
        c.open_source("(literalize x v)\n(p r (x ^v <v>) --> (remove 1))", None)
            .unwrap()
            .expect_ok()
            .unwrap();
        c.send_line("BATCH").unwrap();
        for i in 0..5 {
            c.send_line(&format!("ASSERT x ^v {i}")).unwrap();
        }
        c.send_line("END").unwrap();
        let reply = c.read_reply().unwrap().expect_ok().unwrap();
        assert!(reply.starts_with("5 "), "{reply}");
        let run = c.run(100).unwrap().expect_ok().unwrap();
        assert!(run.contains("cycles=5"), "{run}");
        c.shutdown().unwrap().expect_ok().unwrap();
        handle.join().unwrap();
    }
}
