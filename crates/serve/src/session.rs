//! One session: a protocol command executor wrapped around an [`Engine`].
//!
//! Ingestion is *staged*: `ASSERT`/`RETRACT` enter working memory
//! immediately (timetags are handed back synchronously) but the matcher
//! only sees them when a `RUN` flushes the session's pending changes as a
//! single [`ops5::ChangeBatch`] — the serve layer's batched-ingestion
//! contract. `RUN 0` is a match-only settle; `RUN n` is clamped to the
//! server's per-command cycle limit so one session cannot monopolize a
//! worker.

use crate::protocol::Reply;
use engine::{ChangeLog, Engine, EngineBuilder, LogRecord, MatcherKind, Snapshot, StopReason};
use ops5::wire;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One staged change inside a `BATCH ... END` block. `line` is the 1-based
/// position of the item within the batch body (counting every line sent
/// after `BATCH`, blank ones included), so error replies point back at the
/// exact wire line the client produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchItem {
    Assert { line: usize, body: String },
    Retract { line: usize, tag: u64 },
}

/// A queued session command (the post-parse, post-framing form of
/// [`crate::protocol::Line`]: batches are assembled, session-control verbs
/// are resolved by the connection layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Assert(String),
    Retract(u64),
    Batch(Vec<BatchItem>),
    Run(u64),
    /// Internal continuation of a sliced `RUN` — never parsed off the
    /// wire. `remaining` cycles are still owed of the clamped request,
    /// `done` have already executed in earlier slices, and `requested` is
    /// the client's original cycle count (for the `clamped=` reply field).
    RunSlice {
        remaining: u64,
        done: u64,
        requested: u64,
    },
    Cs,
    Wm(Option<String>),
    Stats,
    Fired,
    /// Serialize the session's durable state (snapshot text, multi-line).
    Snapshot,
    /// Rebuild the engine from a live snapshot, optionally on another
    /// matcher (`None` keeps the current one).
    Migrate(Option<String>),
    Close,
}

impl Command {
    /// Stable label for per-command latency metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Command::Assert(_) => "assert",
            Command::Retract(_) => "retract",
            Command::Batch(_) => "batch",
            Command::Run(_) | Command::RunSlice { .. } => "run",
            Command::Cs => "cs",
            Command::Wm(_) => "wm",
            Command::Stats => "stats",
            Command::Fired => "fired",
            Command::Snapshot => "snapshot",
            Command::Migrate(_) => "migrate",
            Command::Close => "close",
        }
    }
}

/// The outcome of one execution step. Most commands finish in one step; a
/// sliced `RUN` yields a continuation at each slice boundary so the pool
/// worker can requeue the session between slices (deadline preemption).
#[derive(Debug)]
pub enum Exec {
    /// The command finished; send the reply.
    Done(Reply),
    /// Slice boundary: re-enqueue this continuation at the inbox front
    /// (same reply slot, same sequence) and give the worker back.
    Yield(Command),
}

/// A live session: an engine plus its protocol identity.
pub struct Session {
    pub id: u64,
    /// Program name the session was opened on.
    pub program: String,
    engine: Engine,
    /// Matcher the engine was built with — `MIGRATE` without an argument
    /// rebuilds on the same kind, keeping its configuration (bucket counts,
    /// psm process counts) rather than re-deriving it from the name.
    kind: MatcherKind,
    max_cycles_per_run: u64,
    /// Deadline preemption: nonzero means a `RUN` executes in sub-runs of
    /// at most this many cycles, yielding between slices (0 = off).
    run_slice: u64,
    closed: bool,
    durability: Option<Durability>,
}

/// Per-session durable state on disk: a checkpoint snapshot plus an
/// append-only change/firing log of everything since. The log is flushed
/// after every executed command, so a killed worker loses at most the
/// command that was in flight.
struct Durability {
    dir: PathBuf,
    /// Firings between checkpoints; reaching it rewrites the snapshot and
    /// truncates the log.
    checkpoint_every: u64,
    /// Append-mode handle (so a failed write can be rolled back with
    /// `set_len` and the retry still lands at the true end of file).
    log: File,
    fires_since: u64,
    /// Journal records drained from the engine but not yet durably on
    /// disk. A failed log write parks them here instead of losing them;
    /// the next successful sync (or checkpoint) covers them.
    pending: Vec<LogRecord>,
    /// The last log write failed; surfaced in `STATS?` as
    /// `durability=degraded`. Cleared by the next successful sync.
    degraded: bool,
}

fn reason_str(r: StopReason) -> &'static str {
    match r {
        StopReason::Halt => "halt",
        StopReason::Quiescent => "quiescent",
        StopReason::CycleLimit => "limit",
        StopReason::Budget => "budget",
    }
}

impl Session {
    pub fn new(
        id: u64,
        program: impl Into<String>,
        engine: Engine,
        kind: MatcherKind,
        max_cycles_per_run: u64,
    ) -> Session {
        Session {
            id,
            program: program.into(),
            engine,
            kind,
            max_cycles_per_run: max_cycles_per_run.max(1),
            run_slice: 0,
            closed: false,
            durability: None,
        }
    }

    /// Sets the preemption slice: `RUN` executes in sub-runs of at most
    /// this many cycles, yielding between them (0 disables slicing).
    pub fn set_run_slice(&mut self, cycles: u64) {
        self.run_slice = cycles;
    }

    /// True when the last durability write failed and records are parked
    /// in the pending buffer (`STATS?` reports `durability=degraded`).
    pub fn durability_degraded(&self) -> bool {
        self.durability.as_ref().is_some_and(|d| d.degraded)
    }

    /// Builds a session from snapshot text plus an optional change-log tail.
    /// `engine` must be freshly built (no startup forms loaded). Returns the
    /// session and the number of log records replayed.
    pub fn restore(
        id: u64,
        program: impl Into<String>,
        mut engine: Engine,
        kind: MatcherKind,
        max_cycles_per_run: u64,
        snap_text: &str,
        log_text: &str,
    ) -> Result<(Session, usize), String> {
        let snap = Snapshot::parse(snap_text).map_err(|e| e.to_string())?;
        engine.restore(&snap).map_err(|e| e.to_string())?;
        let log = ChangeLog::parse(log_text).map_err(|e| e.to_string())?;
        log.replay(&mut engine).map_err(|e| e.to_string())?;
        Ok((
            Session::new(id, program, engine, kind, max_cycles_per_run),
            log.len(),
        ))
    }

    /// Snapshot file path for a session id under a durability directory.
    pub fn snap_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("session-{id}.snap"))
    }

    /// Change-log file path for a session id under a durability directory.
    pub fn log_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("session-{id}.log"))
    }

    /// Turns on disk durability: enables the engine's change journal, writes
    /// an initial checkpoint snapshot, and opens the append-only log.
    pub fn attach_durability(&mut self, dir: &Path, checkpoint_every: u64) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        self.engine.enable_journal();
        // Append mode, no truncation: an existing log from a previous
        // incarnation stays valid until the fresh checkpoint below has
        // durably replaced it (`checkpoint` truncates, and only after the
        // snapshot rename is on disk).
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::log_path(dir, self.id))?;
        self.durability = Some(Durability {
            dir: dir.to_path_buf(),
            checkpoint_every: checkpoint_every.max(1),
            log,
            fires_since: 0,
            pending: Vec::new(),
            degraded: false,
        });
        self.checkpoint()
    }

    /// Rewrites the snapshot (write-temp + fsync + rename + directory
    /// fsync) and only then truncates the log — the snapshot supersedes
    /// every record written (or pending) so far, but must be durable
    /// before the old lineage is dropped.
    fn checkpoint(&mut self) -> std::io::Result<()> {
        let text = self.engine.snapshot().to_text();
        let Some(d) = self.durability.as_mut() else {
            return Ok(());
        };
        let snap = Self::snap_path(&d.dir, self.id);
        let tmp = snap.with_extension("snap.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            // The rename below only orders the *name*; without this a
            // crash can leave a named-but-truncated snapshot.
            f.sync_all()?;
        }
        fs::rename(&tmp, &snap)?;
        // Make the rename itself durable before the log is dropped.
        if let Ok(dirf) = File::open(&d.dir) {
            let _ = dirf.sync_all();
        }
        // Only now is the old lineage superseded: truncate the log (still
        // append-mode — see `sync_durability`'s rollback) and drop any
        // pending records, which the snapshot already contains.
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::log_path(&d.dir, self.id))?;
        log.set_len(0)?;
        d.log = log;
        d.fires_since = 0;
        d.pending.clear();
        self.engine.clear_journal();
        Ok(())
    }

    /// Appends the journal records accumulated by the last command — plus
    /// anything a previous failed write left pending — to the log file,
    /// checkpointing once enough firings pile up. A write failure loses
    /// nothing: the records stay parked in the pending buffer, any partial
    /// append is rolled back, and the next successful sync (or checkpoint)
    /// covers them.
    fn sync_durability(&mut self) -> std::io::Result<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        let recs = self.engine.drain_journal();
        let d = self.durability.as_mut().expect("checked above");
        d.pending.extend(recs);
        if d.pending.is_empty() {
            return Ok(());
        }
        let mut buf = String::new();
        for r in &d.pending {
            buf.push_str(&r.to_line());
            buf.push('\n');
        }
        // The handle is append-mode, so `end` is where this write lands;
        // rolling a failure back with `set_len` leaves the next attempt
        // appending at the restored end — no partial lines, no holes.
        let end = d.log.metadata()?.len();
        match d.log.write_all(buf.as_bytes()).and_then(|()| d.log.flush()) {
            Ok(()) => {
                let fires = d
                    .pending
                    .iter()
                    .filter(|r| matches!(r, LogRecord::Fire { .. }))
                    .count() as u64;
                d.pending.clear();
                d.degraded = false;
                d.fires_since += fires;
                if d.fires_since >= d.checkpoint_every {
                    self.checkpoint()?;
                }
                Ok(())
            }
            Err(e) => {
                let _ = d.log.set_len(end);
                Err(e)
            }
        }
    }

    /// Snapshots the engine and rebuilds it from scratch — same program,
    /// possibly a different matcher — then restores the snapshot into the
    /// fresh engine. This is the live-migration primitive: the snapshot is
    /// matcher-neutral, so the rebuilt engine re-derives the identical
    /// conflict set under whichever match algorithm it now runs.
    fn migrate(&mut self, target: Option<&str>) -> Result<String, String> {
        let kind = match target {
            Some(name) => crate::registry::matcher_kind(name)?,
            None => self.kind.clone(),
        };
        let snap = self.engine.snapshot();
        let mut next = EngineBuilder::new(self.engine.prog.clone())
            .matcher(kind.clone())
            .limits(self.engine.limits)
            .act_strategy(self.engine.act_strategy())
            .build()
            .map_err(|e| e.to_string())?;
        next.restore(&snap).map_err(|e| e.to_string())?;
        if self.engine.journal().is_some() {
            next.enable_journal();
        }
        self.engine = next;
        self.kind = kind;
        // The fresh engine's journal starts empty, so the on-disk log no
        // longer continues the old lineage — cut a new checkpoint.
        if self.durability.is_some() {
            self.checkpoint()
                .map_err(|e| format!("post-migration checkpoint: {e}"))?;
        }
        Ok(format!(
            "matcher={} wm={} cs={} cycles={}",
            self.engine.matcher().name(),
            self.engine.wm().len(),
            self.engine.conflict_set().len(),
            self.engine.cycles()
        ))
    }

    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Direct engine access for differential checks in tests and the load
    /// harness.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    fn stage_assert(&mut self, body: &str) -> Result<u64, String> {
        let prog = &mut self.engine.prog;
        let (class, fields) = wire::parse_wme_text(body, &mut prog.symbols, &prog.classes)
            .map_err(|e| e.to_string())?;
        self.engine
            .stage(class, fields)
            .map(|w| w.timetag)
            .map_err(|e| e.to_string())
    }

    /// Executes one command to completion, looping over slice boundaries.
    /// The serial driver for tests and differential checks; the pool
    /// worker calls [`execute_step`](Self::execute_step) instead so it can
    /// requeue the session between slices.
    pub fn execute(&mut self, cmd: Command) -> Reply {
        let mut cmd = cmd;
        loop {
            match self.execute_step(cmd) {
                Exec::Done(reply) => return reply,
                Exec::Yield(next) => cmd = next,
            }
        }
    }

    /// Executes one step: a whole command, or one slice of a sliced `RUN`.
    /// Every slice is a durable point — the step's journal records hit
    /// disk (or the pending buffer) before the step returns. A durability
    /// write failure never clobbers the reply: the session is flagged
    /// degraded (`STATS?` reports `durability=degraded`) and the records
    /// stay buffered until a later sync succeeds.
    pub fn execute_step(&mut self, cmd: Command) -> Exec {
        let exec = self.dispatch_exec(cmd);
        if self.sync_durability().is_err() {
            if let Some(d) = self.durability.as_mut() {
                d.degraded = true;
            }
        }
        exec
    }

    fn dispatch_exec(&mut self, cmd: Command) -> Exec {
        if self.closed {
            return Exec::Done(Reply::Err("session is closed".into()));
        }
        match cmd {
            Command::Run(n) => {
                if n == 0 {
                    self.engine.settle();
                    return Exec::Done(Reply::Ok(format!(
                        "cycles=0 reason=settled total={} cs={}",
                        self.engine.cycles(),
                        self.engine.conflict_set().len()
                    )));
                }
                let clamp = n.min(self.max_cycles_per_run);
                self.run_step(clamp, 0, n)
            }
            Command::RunSlice {
                remaining,
                done,
                requested,
            } => self.run_step(remaining, done, requested),
            other => Exec::Done(self.dispatch(other)),
        }
    }

    /// One slice of a (possibly sliced) `RUN`: `remaining` cycles are
    /// still owed of the clamped request, `done` already ran in earlier
    /// slices, `requested` is the client's original cycle count. The final
    /// reply is byte-identical to an unsliced run — cycle counts
    /// accumulate across slices and `settle` only runs at the end.
    fn run_step(&mut self, remaining: u64, done: u64, requested: u64) -> Exec {
        let slice = if self.run_slice == 0 {
            remaining
        } else {
            remaining.min(self.run_slice)
        };
        match self.engine.run(slice) {
            Ok(res) => {
                let total_done = done + res.cycles;
                let left = remaining.saturating_sub(res.cycles);
                if matches!(res.reason, StopReason::CycleLimit) && left > 0 {
                    // Only the slice budget ran out; the command still has
                    // cycles owed. Yield so other sessions get the worker.
                    return Exec::Yield(Command::RunSlice {
                        remaining: left,
                        done: total_done,
                        requested,
                    });
                }
                // Leave the conflict set current even when the run
                // stopped on a limit mid-stream.
                self.engine.settle();
                let mut msg = format!(
                    "cycles={} reason={} total={} cs={}",
                    total_done,
                    reason_str(res.reason),
                    self.engine.cycles(),
                    self.engine.conflict_set().len()
                );
                if matches!(res.reason, StopReason::CycleLimit)
                    && requested > self.max_cycles_per_run
                {
                    // Server policy, not program behavior, cut this run
                    // short — `reason=limit` alone cannot tell the two
                    // apart.
                    msg.push_str(&format!(" clamped={requested}"));
                }
                Exec::Done(Reply::Ok(msg))
            }
            Err(e) => Exec::Done(Reply::Err(e.to_string())),
        }
    }

    fn dispatch(&mut self, cmd: Command) -> Reply {
        if self.closed {
            return Reply::Err("session is closed".into());
        }
        match cmd {
            Command::Assert(body) => match self.stage_assert(&body) {
                Ok(tag) => Reply::Ok(tag.to_string()),
                Err(e) => Reply::Err(e),
            },
            Command::Retract(tag) => match self.engine.stage_retract(tag) {
                Ok(()) => Reply::Ok(tag.to_string()),
                Err(e) => Reply::Err(e.to_string()),
            },
            Command::Batch(items) => {
                let total = items.len();
                let mut tags = Vec::new();
                for item in items {
                    let (line, res) = match item {
                        BatchItem::Assert { line, body } => (line, self.stage_assert(&body)),
                        BatchItem::Retract { line, tag } => (
                            line,
                            self.engine
                                .stage_retract(tag)
                                .map(|()| tag)
                                .map_err(|e| e.to_string()),
                        ),
                    };
                    match res {
                        Ok(tag) => tags.push(tag.to_string()),
                        Err(e) => return Reply::Err(format!("BATCH line {line}: {e}")),
                    }
                }
                Reply::Ok(format!("{total} {}", tags.join(" ")))
            }
            Command::Run(_) | Command::RunSlice { .. } => {
                unreachable!("RUN is handled by dispatch_exec")
            }
            Command::Cs => {
                self.engine.settle();
                let keys = self.engine.conflict_set().sorted_keys();
                let lines: Vec<String> = keys
                    .iter()
                    .map(|(p, tags)| {
                        let tag_s: Vec<String> = tags.iter().map(|t| t.to_string()).collect();
                        format!("{} {}", self.engine.prog.prod_name(*p), tag_s.join(" "))
                    })
                    .collect();
                Reply::Multi {
                    head: format!("CS {}", lines.len()),
                    lines,
                }
            }
            Command::Wm(class) => {
                let class_id = match class {
                    None => None,
                    // Check the class *table*, not just the symbol table: any
                    // interned symbol (attribute names, symbolic values)
                    // resolves to an id, and filtering on one would silently
                    // answer `WM 0` for a class that does not exist.
                    Some(name) => match self
                        .engine
                        .prog
                        .symbols
                        .get(&name)
                        .filter(|id| self.engine.prog.classes.info(*id).is_some())
                    {
                        Some(id) => Some(id),
                        None => return Reply::Err(format!("unknown class `{name}`")),
                    },
                };
                let mut wmes: Vec<_> = self
                    .engine
                    .wm()
                    .iter()
                    .filter(|w| class_id.is_none_or(|c| w.class == c))
                    .cloned()
                    .collect();
                wmes.sort_by_key(|w| w.timetag);
                let prog = &self.engine.prog;
                let lines: Vec<String> = wmes
                    .iter()
                    .map(|w| {
                        format!(
                            "{} {}",
                            w.timetag,
                            wire::print_wme(w, &prog.symbols, &prog.classes)
                        )
                    })
                    .collect();
                Reply::Multi {
                    head: format!("WM {}", lines.len()),
                    lines,
                }
            }
            Command::Stats => {
                let ms = self.engine.match_stats();
                let durability = match &self.durability {
                    None => "",
                    Some(d) if d.degraded => " durability=degraded",
                    Some(_) => " durability=ok",
                };
                Reply::Ok(format!(
                    "program={} matcher={} cycles={} wm={} cs={} staged={} wme-changes={} activations={}{durability}",
                    self.program,
                    self.engine.matcher().name(),
                    self.engine.cycles(),
                    self.engine.wm().len(),
                    self.engine.conflict_set().len(),
                    self.engine.staged_len(),
                    ms.wme_changes,
                    ms.activations
                ))
            }
            Command::Fired => {
                let lines: Vec<String> = self
                    .engine
                    .fired_log()
                    .iter()
                    .map(|(p, tags)| {
                        let tag_s: Vec<String> = tags.iter().map(|t| t.to_string()).collect();
                        format!("{} {}", self.engine.prog.prod_name(*p), tag_s.join(" "))
                    })
                    .collect();
                Reply::Multi {
                    head: format!("FIRED {}", lines.len()),
                    lines,
                }
            }
            Command::Snapshot => {
                let text = self.engine.snapshot().to_text();
                let lines: Vec<String> = text.lines().map(str::to_string).collect();
                Reply::Multi {
                    head: format!("SNAPSHOT {}", lines.len()),
                    lines,
                }
            }
            Command::Migrate(target) => match self.migrate(target.as_deref()) {
                Ok(msg) => Reply::Ok(msg),
                Err(e) => Reply::Err(e),
            },
            Command::Close => {
                self.closed = true;
                Reply::Ok(format!("closed cycles={}", self.engine.cycles()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{EngineBuilder, EngineLimits, MatcherKind};

    const SRC: &str = "(literalize item n)
                       (literalize sum total)
                       (p add (item ^n <n>) (sum ^total <t>)
                          --> (remove 1) (modify 2 ^total (compute <t> + <n>)))
                       (p report (sum ^total <t>) - (item)
                          --> (write sum is <t> (crlf)) (halt))";

    fn session(max_per_run: u64) -> Session {
        let mut eng = EngineBuilder::from_source(SRC)
            .unwrap()
            .matcher(MatcherKind::default())
            .build()
            .unwrap();
        eng.make_wme("sum", &[("total", ops5::Value::Int(0))])
            .unwrap();
        Session::new(1, "adder", eng, MatcherKind::default(), max_per_run)
    }

    #[test]
    fn assert_run_cs_roundtrip() {
        let mut s = session(1000);
        let r = s.execute(Command::Assert("item ^n 3".into()));
        assert!(matches!(r, Reply::Ok(_)), "{r:?}");
        let r = s.execute(Command::Assert("item ^n 4".into()));
        assert!(r.is_ok());
        // Staged, not yet matched: CS? settles and sees the pending adds.
        match s.execute(Command::Cs) {
            Reply::Multi { head, lines } => {
                assert_eq!(head, "CS 2");
                assert!(lines.iter().all(|l| l.starts_with("add ")), "{lines:?}");
            }
            other => panic!("{other:?}"),
        }
        match s.execute(Command::Run(100)) {
            Reply::Ok(msg) => {
                assert!(msg.contains("reason=halt"), "{msg}");
                assert!(msg.contains("total=3"), "{msg}");
            }
            other => panic!("{other:?}"),
        }
        match s.execute(Command::Wm(Some("sum".into()))) {
            Reply::Multi { head, lines } => {
                assert_eq!(head, "WM 1");
                assert!(lines[0].contains("^total 7"), "{lines:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_replies_with_count_and_tags() {
        let mut s = session(1000);
        let r = s.execute(Command::Batch(vec![
            BatchItem::Assert {
                line: 1,
                body: "item ^n 1".into(),
            },
            BatchItem::Assert {
                line: 2,
                body: "item ^n 2".into(),
            },
        ]));
        match r {
            Reply::Ok(msg) => assert!(msg.starts_with("2 "), "{msg}"),
            other => panic!("{other:?}"),
        }
        // A retract of a staged element annihilates inside the batch.
        let tag: u64 = match s.execute(Command::Assert("item ^n 9".into())) {
            Reply::Ok(t) => t.parse().unwrap(),
            other => panic!("{other:?}"),
        };
        assert!(s.execute(Command::Retract(tag)).is_ok());
        match s.execute(Command::Stats) {
            Reply::Ok(msg) => assert!(msg.contains("staged=2"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_errors_name_the_offending_line() {
        let mut s = session(1000);
        let r = s.execute(Command::Batch(vec![
            BatchItem::Assert {
                line: 1,
                body: "item ^n 1".into(),
            },
            BatchItem::Assert {
                line: 3,
                body: "item ^bogus 2".into(),
            },
        ]));
        match r {
            Reply::Err(msg) => assert!(msg.starts_with("BATCH line 3:"), "{msg}"),
            other => panic!("{other:?}"),
        }
        let r = s.execute(Command::Batch(vec![BatchItem::Retract {
            line: 2,
            tag: 999,
        }]));
        match r {
            Reply::Err(msg) => assert!(msg.starts_with("BATCH line 2:"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wm_query_rejects_non_class_symbols() {
        let mut s = session(1000);
        s.execute(Command::Assert("item ^n 3".into()));
        // A name that was never interned.
        match s.execute(Command::Wm(Some("nosuch".into()))) {
            Reply::Err(msg) => assert!(msg.contains("unknown class `nosuch`"), "{msg}"),
            other => panic!("{other:?}"),
        }
        // An interned symbol that is an attribute, not a class — the
        // regression case that used to come back as an empty `WM 0`.
        match s.execute(Command::Wm(Some("n".into()))) {
            Reply::Err(msg) => assert!(msg.contains("unknown class `n`"), "{msg}"),
            other => panic!("{other:?}"),
        }
        // Real classes still answer.
        match s.execute(Command::Wm(Some("item".into()))) {
            Reply::Multi { head, .. } => assert_eq!(head, "WM 1"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_zero_settles_without_firing() {
        let mut s = session(1000);
        s.execute(Command::Assert("item ^n 5".into()));
        match s.execute(Command::Run(0)) {
            Reply::Ok(msg) => {
                assert!(msg.contains("cycles=0"), "{msg}");
                assert!(msg.contains("reason=settled"), "{msg}");
                assert!(msg.contains("cs=1"), "{msg}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_is_clamped_to_per_command_limit() {
        let mut s = session(1);
        s.execute(Command::Assert("item ^n 1".into()));
        s.execute(Command::Assert("item ^n 2".into()));
        match s.execute(Command::Run(1_000_000)) {
            Reply::Ok(msg) => {
                assert!(msg.contains("cycles=1"), "{msg}");
                assert!(msg.contains("reason=limit"), "{msg}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strict_parse_errors_surface_as_err() {
        let mut s = session(1000);
        assert!(matches!(
            s.execute(Command::Assert("nosuch ^x 1".into())),
            Reply::Err(_)
        ));
        assert!(matches!(
            s.execute(Command::Assert("item ^bogus 1".into())),
            Reply::Err(_)
        ));
        assert!(matches!(s.execute(Command::Retract(999)), Reply::Err(_)));
    }

    #[test]
    fn wm_limit_produces_err_not_panic() {
        let mut eng = EngineBuilder::from_source(SRC)
            .unwrap()
            .limits(EngineLimits {
                max_wm: Some(2),
                max_cycles: None,
            })
            .build()
            .unwrap();
        eng.make_wme("sum", &[("total", ops5::Value::Int(0))])
            .unwrap();
        let mut s = Session::new(1, "adder", eng, MatcherKind::default(), 1000);
        assert!(s.execute(Command::Assert("item ^n 1".into())).is_ok());
        assert!(matches!(
            s.execute(Command::Assert("item ^n 2".into())),
            Reply::Err(_)
        ));
    }

    #[test]
    fn closed_session_rejects_everything() {
        let mut s = session(1000);
        assert!(s.execute(Command::Close).is_ok());
        assert!(s.is_closed());
        assert!(matches!(s.execute(Command::Run(1)), Reply::Err(_)));
    }
}
