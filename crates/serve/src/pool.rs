//! The worker pool: a fixed set of threads executing session commands.
//!
//! Scheduling is actor-style. Each session owns an inbox (a bounded command
//! queue) and appears at most once on the global run queue; a worker pops a
//! session, executes *one* command, and requeues the session only if its
//! inbox still has work. One command per pop keeps a long-running session
//! from starving the rest — combined with the per-command cycle clamp in
//! [`crate::session::Session`], every unit of worker work is bounded.
//!
//! Backpressure is explicit and two-level:
//! * inbox full → [`SubmitOutcome::Overloaded`] — *this session* is behind;
//! * run queue at capacity → [`SubmitOutcome::Busy`] — the *server* is
//!   saturated;
//!
//! and both are reported to the submitting connection immediately, never
//! queued. Shutdown drains: no new submissions are accepted, but every
//! queued command executes before the workers exit, so no session is left
//! mid-cycle.

use crate::protocol::Reply;
use crate::session::{Command, Session};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Where a worker should deliver a command's reply.
///
/// The thread front-end hands each command a one-shot channel whose
/// receiver sits in the per-connection writer queue; the reactor front-end
/// has no thread to block on a receiver, so its replies are pushed onto a
/// shared [`Completions`] queue tagged with (connection, sequence) and the
/// reactor thread is woken to route them into the connection's ordered
/// reply slots.
pub enum ReplyTx {
    /// One-shot channel (thread front-end, tests).
    Channel(mpsc::SyncSender<Reply>),
    /// Reactor completion: queue + (connection id, per-connection sequence).
    Completion {
        queue: Arc<Completions>,
        conn: u64,
        seq: u64,
    },
}

impl ReplyTx {
    /// Delivers the reply; a vanished recipient is not an error.
    pub fn send(&self, reply: Reply) {
        match self {
            ReplyTx::Channel(tx) => {
                let _ = tx.send(reply);
            }
            ReplyTx::Completion { queue, conn, seq } => queue.push(*conn, *seq, reply),
        }
    }
}

/// The reactor's completion queue: worker threads push finished replies
/// here and wake the (single) reactor thread, which drains the queue and
/// slots each reply into its connection's ordered pending list.
pub struct Completions {
    q: Mutex<Vec<(u64, u64, Reply)>>,
    waker: reactor::Waker,
}

impl Completions {
    pub fn new(waker: reactor::Waker) -> Completions {
        Completions {
            q: Mutex::new(Vec::new()),
            waker,
        }
    }

    pub fn push(&self, conn: u64, seq: u64, reply: Reply) {
        self.q.lock().unwrap().push((conn, seq, reply));
        let _ = self.waker.wake();
    }

    /// Takes everything queued so far (reactor thread only).
    pub fn drain(&self) -> Vec<(u64, u64, Reply)> {
        std::mem::take(&mut *self.q.lock().unwrap())
    }

    /// Resets the underlying eventfd after its readiness event fired.
    pub fn drain_waker(&self) {
        self.waker.drain();
    }
}

/// Where a submitted command ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued; the reply will arrive on the submission's channel.
    Accepted,
    /// The global run queue is at capacity — server-wide backpressure.
    Busy,
    /// The session's own inbox is full — per-session backpressure.
    Overloaded,
    /// The pool is draining for shutdown.
    ShuttingDown,
}

struct Inbox {
    q: VecDeque<(Command, ReplyTx)>,
    /// True while the slot sits on the run queue (or is being executed with
    /// a requeue check still owed). At most one run-queue entry per session.
    scheduled: bool,
}

/// One session's scheduling state: inbox + the session itself.
pub struct SessionSlot {
    pub id: u64,
    inbox: Mutex<Inbox>,
    session: Mutex<Session>,
}

impl SessionSlot {
    pub fn new(session: Session) -> Arc<SessionSlot> {
        Arc::new(SessionSlot {
            id: session.id,
            inbox: Mutex::new(Inbox {
                q: VecDeque::new(),
                scheduled: false,
            }),
            session: Mutex::new(session),
        })
    }

    /// Runs `f` against the session outside the pool (tests, differential
    /// checks). Panics if a worker holds the session.
    pub fn with_session<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        f(&mut self.session.lock().unwrap())
    }
}

/// Cumulative pool counters (monotonic; read by `STATS?`-style probes and
/// the load harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub executed: u64,
    pub rejected_busy: u64,
    pub rejected_overloaded: u64,
}

struct PoolInner {
    runq: Mutex<VecDeque<Arc<SessionSlot>>>,
    cv: Condvar,
    stop: AtomicBool,
    queue_depth: usize,
    run_queue_cap: usize,
    executed: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_overloaded: AtomicU64,
    /// Per-command-kind execution latency histograms, present when the
    /// server runs with observability enabled.
    cmd_latency: Option<CmdLatency>,
}

/// One `serve_command_ns` histogram per command kind, pre-registered so the
/// worker hot path never touches the registry lock.
struct CmdLatency {
    by_kind: Vec<(&'static str, std::sync::Arc<obs::Histogram>)>,
}

impl CmdLatency {
    const KINDS: [&'static str; 11] = [
        "assert", "retract", "batch", "run", "cs", "wm", "stats", "fired", "snapshot", "migrate",
        "close",
    ];

    fn new(registry: &Arc<obs::Registry>) -> CmdLatency {
        CmdLatency {
            by_kind: Self::KINDS
                .iter()
                .map(|k| {
                    let labels = vec![("cmd".to_string(), k.to_string())];
                    (*k, registry.histogram("serve_command_ns", labels))
                })
                .collect(),
        }
    }

    fn record(&self, kind: &str, nanos: u64) {
        if let Some((_, h)) = self.by_kind.iter().find(|(k, _)| *k == kind) {
            h.record(nanos);
        }
    }
}

/// Fixed worker thread pool over session slots.
pub struct Pool {
    inner: Arc<PoolInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Spawns `workers` threads. `queue_depth` bounds each session's inbox;
    /// `run_queue_cap` bounds how many sessions may be runnable at once.
    /// A `registry` turns on per-command latency histograms.
    pub fn new(
        workers: usize,
        queue_depth: usize,
        run_queue_cap: usize,
        registry: Option<&Arc<obs::Registry>>,
    ) -> Pool {
        let inner = Arc::new(PoolInner {
            runq: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            queue_depth: queue_depth.max(1),
            run_queue_cap: run_queue_cap.max(1),
            executed: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            cmd_latency: registry.map(CmdLatency::new),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Pool {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Queues one command for a session. The reply — including an immediate
    /// rejection — always travels through `reply_tx`'s counterpart; on a
    /// non-`Accepted` outcome the *caller* sends the backpressure reply, so
    /// reply order matches submission order even under pipelining.
    pub fn submit(
        &self,
        slot: &Arc<SessionSlot>,
        cmd: Command,
        reply_tx: ReplyTx,
    ) -> SubmitOutcome {
        if self.inner.stop.load(Ordering::SeqCst) {
            return SubmitOutcome::ShuttingDown;
        }
        let mut inbox = slot.inbox.lock().unwrap();
        if inbox.q.len() >= self.inner.queue_depth {
            self.inner
                .rejected_overloaded
                .fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Overloaded;
        }
        if inbox.scheduled {
            inbox.q.push_back((cmd, reply_tx));
            return SubmitOutcome::Accepted;
        }
        // Lock order inbox → runq, same as the worker's requeue path.
        let mut runq = self.inner.runq.lock().unwrap();
        if runq.len() >= self.inner.run_queue_cap {
            self.inner.rejected_busy.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Busy;
        }
        inbox.q.push_back((cmd, reply_tx));
        inbox.scheduled = true;
        runq.push_back(slot.clone());
        drop(runq);
        drop(inbox);
        self.inner.cv.notify_one();
        SubmitOutcome::Accepted
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self.inner.executed.load(Ordering::Relaxed),
            rejected_busy: self.inner.rejected_busy.load(Ordering::Relaxed),
            rejected_overloaded: self.inner.rejected_overloaded.load(Ordering::Relaxed),
        }
    }

    pub fn is_stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: refuse new submissions, execute everything already
    /// queued, then join the workers.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for w in handles {
            let _ = w.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let slot = {
            let mut runq = inner.runq.lock().unwrap();
            loop {
                if let Some(slot) = runq.pop_front() {
                    break slot;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    // Stop requested and nothing runnable: the queue can
                    // only refill from requeues, which other workers finish
                    // before they exit the same way.
                    return;
                }
                runq = inner.cv.wait(runq).unwrap();
            }
        };
        let next = slot.inbox.lock().unwrap().q.pop_front();
        if let Some((cmd, reply_tx)) = next {
            let kind = cmd.label();
            let t0 = inner
                .cmd_latency
                .as_ref()
                .map(|_| std::time::Instant::now());
            let reply = slot.session.lock().unwrap().execute(cmd);
            if let (Some(lat), Some(t0)) = (&inner.cmd_latency, t0) {
                lat.record(kind, t0.elapsed().as_nanos() as u64);
            }
            inner.executed.fetch_add(1, Ordering::Relaxed);
            // A vanished reader is not the session's problem.
            reply_tx.send(reply);
        }
        // Requeue while work remains; drain continues past `stop`.
        let mut inbox = slot.inbox.lock().unwrap();
        if inbox.q.is_empty() {
            inbox.scheduled = false;
        } else {
            let mut runq = inner.runq.lock().unwrap();
            runq.push_back(slot.clone());
            drop(runq);
            drop(inbox);
            inner.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{EngineBuilder, MatcherKind};

    const SRC: &str = "(literalize item n)
                       (p consume (item ^n <n>) --> (remove 1))";

    fn slot(id: u64) -> Arc<SessionSlot> {
        let eng = EngineBuilder::from_source(SRC).unwrap().build().unwrap();
        SessionSlot::new(Session::new(id, "t", eng, MatcherKind::default(), 1000))
    }

    /// A session whose `RUN` spins for thousands of cycles — used to wedge
    /// a worker so queue-overflow paths can be hit deterministically.
    fn spinner(id: u64) -> Arc<SessionSlot> {
        let src = "(literalize c n)
                   (p spin (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))";
        let mut eng = EngineBuilder::from_source(src).unwrap().build().unwrap();
        eng.make_wme("c", &[("n", ops5::Value::Int(0))]).unwrap();
        SessionSlot::new(Session::new(
            id,
            "spin",
            eng,
            MatcherKind::default(),
            20_000,
        ))
    }

    fn submit_ok(pool: &Pool, slot: &Arc<SessionSlot>, cmd: Command) -> mpsc::Receiver<Reply> {
        let (tx, rx) = mpsc::sync_channel(1);
        assert_eq!(
            pool.submit(slot, cmd, ReplyTx::Channel(tx)),
            SubmitOutcome::Accepted
        );
        rx
    }

    #[test]
    fn commands_on_one_session_execute_in_order() {
        let pool = Pool::new(2, 64, 64, None);
        let s = slot(1);
        let rxs: Vec<_> = (0..10)
            .map(|i| submit_ok(&pool, &s, Command::Assert(format!("item ^n {i}"))))
            .collect();
        let tags: Vec<u64> = rxs
            .iter()
            .map(|rx| match rx.recv().unwrap() {
                Reply::Ok(t) => t.parse().unwrap(),
                other => panic!("{other:?}"),
            })
            .collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(tags, sorted, "timetags issued in submission order");
        let rx = submit_ok(&pool, &s, Command::Run(100));
        assert!(rx.recv().unwrap().is_ok());
    }

    #[test]
    fn inbox_overflow_reports_overloaded() {
        let pool = Pool::new(1, 2, 64, None);
        let s = slot(1);
        // Wedge the sole worker on long spin runs so the other session's
        // inbox fills without being drained. One-command-per-pop means the
        // worker alternates, but each spin run takes thousands of cycles
        // while our submits are mutex pushes.
        // queue_depth applies to the spinner too: two runs fill its inbox
        // exactly and wedge the worker for tens of thousands of cycles.
        let spin = spinner(2);
        let spin_rxs: Vec<_> = (0..2)
            .map(|_| submit_ok(&pool, &spin, Command::Run(20_000)))
            .collect();
        let mut saw_overloaded = false;
        let mut rxs = Vec::new();
        for i in 0..8 {
            let (tx, rx) = mpsc::sync_channel(1);
            match pool.submit(
                &s,
                Command::Assert(format!("item ^n {i}")),
                ReplyTx::Channel(tx),
            ) {
                SubmitOutcome::Accepted => rxs.push(rx),
                SubmitOutcome::Overloaded => {
                    saw_overloaded = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            saw_overloaded,
            "queue_depth=2 must overflow within 8 submits"
        );
        assert!(pool.stats().rejected_overloaded >= 1);
        for rx in spin_rxs {
            let _ = rx.recv();
        }
        for rx in rxs {
            assert!(rx.recv().unwrap().is_ok());
        }
    }

    #[test]
    fn run_queue_cap_reports_busy() {
        // Wedge the sole worker, then contend two fresh sessions for a
        // run queue with capacity one.
        let pool = Pool::new(1, 64, 1, None);
        let spin = spinner(9);
        let spin_rx = submit_ok(&pool, &spin, Command::Run(20_000));
        let a = slot(1);
        let b = slot(2);
        // Wait until the worker has actually picked spin up (while spin
        // still sits on the queue, `a` itself bounces), then `a` takes the
        // only run-queue seat and `b` must bounce.
        let rx_a = loop {
            let (tx, rx) = mpsc::sync_channel(1);
            match pool.submit(&a, Command::Cs, ReplyTx::Channel(tx)) {
                SubmitOutcome::Accepted => break rx,
                SubmitOutcome::Busy => std::thread::yield_now(),
                other => panic!("unexpected {other:?}"),
            }
        };
        let (tx, _rx_b) = mpsc::sync_channel(1);
        assert_eq!(
            pool.submit(&b, Command::Cs, ReplyTx::Channel(tx)),
            SubmitOutcome::Busy
        );
        assert!(pool.stats().rejected_busy >= 1);
        let _ = spin_rx.recv();
        let _ = rx_a.recv();
    }

    #[test]
    fn shutdown_drains_queued_commands() {
        let pool = Pool::new(2, 64, 64, None);
        let slots: Vec<_> = (0..4).map(slot).collect();
        let rxs: Vec<_> = slots
            .iter()
            .flat_map(|s| {
                (0..8)
                    .map(|i| submit_ok(&pool, s, Command::Assert(format!("item ^n {i}"))))
                    .collect::<Vec<_>>()
            })
            .collect();
        pool.shutdown();
        let (tx, _rx) = mpsc::sync_channel(1);
        assert_eq!(
            pool.submit(&slots[0], Command::Cs, ReplyTx::Channel(tx)),
            SubmitOutcome::ShuttingDown
        );
        // Every queued command completed before the workers exited.
        for rx in rxs {
            assert!(rx.try_recv().unwrap().is_ok());
        }
        assert_eq!(pool.stats().executed, 32);
    }
}
