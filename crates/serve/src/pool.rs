//! The worker pool: a fixed set of threads executing session commands.
//!
//! Scheduling is actor-style. Each session owns an inbox (a bounded command
//! queue) and appears at most once on the run queues; a worker pops a
//! session, executes *one* command (or one *slice* of a long `RUN` — see
//! below), and requeues the session only if its inbox still has work. One
//! command per pop keeps a long-running session from starving the rest —
//! combined with the per-command cycle clamp in
//! [`crate::session::Session`], every unit of worker work is bounded.
//!
//! **Priority classes.** The run queue is three queues, one per
//! [`Priority`] class (`high`/`normal`/`batch`), chosen at
//! `OPEN ... PRIO=<p>` and adjustable with the `PRIO` verb. Dequeue is
//! weighted ([`CLASS_WEIGHTS`] credits per refill round) with aging
//! ([`AGE_PROMOTE`]) as a backstop, so a loaded `batch` class is served at
//! least once per credit round and can never starve outright.
//!
//! **Deadline preemption.** When the server runs with a slice budget
//! (`run_slice_cycles`), a session's `RUN` executes as budgeted sub-runs:
//! the session yields a [`crate::session::Exec::Yield`] continuation at
//! each slice boundary, the worker pushes it back on the *front* of the
//! session's inbox (same reply slot, same order) and requeues the session,
//! so a wedged spinner no longer monopolizes a worker.
//!
//! **Cancellation.** [`SessionSlot::cancel`] marks everything currently in
//! the inbox — including an in-flight sliced `RUN`'s continuation — for
//! fast-fail: the worker answers `ERR cancelled` without touching the
//! engine, cutting the run at its next slice boundary. The session itself
//! stays open and resumable.
//!
//! Backpressure is explicit and two-level:
//! * inbox full → [`SubmitOutcome::Overloaded`] — *this session* is behind;
//! * the session's class run-queue at capacity → [`SubmitOutcome::Busy`] —
//!   the *server* is saturated for that class;
//!
//! and both are reported to the submitting connection immediately, never
//! queued. Shutdown drains: no new submissions are accepted, but every
//! queued command executes before the workers exit, so no session is left
//! mid-cycle.

use crate::protocol::Reply;
use crate::session::{Command, Exec, Session};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A session's scheduling class. Order doubles as dequeue preference:
/// lower discriminant is served first when credits allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    High,
    #[default]
    Normal,
    Batch,
}

impl Priority {
    pub const COUNT: usize = 3;
    pub const ALL: [Priority; Priority::COUNT] =
        [Priority::High, Priority::Normal, Priority::Batch];

    /// Parses a class name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Priority> {
        match name.to_ascii_lowercase().as_str() {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }
}

/// Dequeue credits handed to each class per refill round: high gets 16
/// pops for every 4 normal and 1 batch when every class is loaded.
const CLASS_WEIGHTS: [u32; Priority::COUNT] = [16, 4, 1];

/// A non-empty class passed over this many consecutive pops is served
/// unconditionally — an anti-starvation backstop behind the credit scheme
/// (under steady load credits alone bound the wait to one refill round).
const AGE_PROMOTE: u32 = 32;

/// Where a worker should deliver a command's reply.
///
/// The thread front-end hands each command a one-shot channel whose
/// receiver sits in the per-connection writer queue; the reactor front-end
/// has no thread to block on a receiver, so its replies are pushed onto a
/// shared [`Completions`] queue tagged with (connection, sequence) and the
/// reactor thread is woken to route them into the connection's ordered
/// reply slots.
pub enum ReplyTx {
    /// One-shot channel (thread front-end, tests).
    Channel(mpsc::SyncSender<Reply>),
    /// Reactor completion: queue + (connection id, per-connection sequence).
    Completion {
        queue: Arc<Completions>,
        conn: u64,
        seq: u64,
    },
}

impl ReplyTx {
    /// Delivers the reply; a vanished recipient is not an error.
    pub fn send(&self, reply: Reply) {
        match self {
            ReplyTx::Channel(tx) => {
                let _ = tx.send(reply);
            }
            ReplyTx::Completion { queue, conn, seq } => queue.push(*conn, *seq, reply),
        }
    }
}

/// The reactor's completion queue: worker threads push finished replies
/// here and wake the (single) reactor thread, which drains the queue and
/// slots each reply into its connection's ordered pending list.
pub struct Completions {
    q: Mutex<Vec<(u64, u64, Reply)>>,
    waker: reactor::Waker,
}

impl Completions {
    pub fn new(waker: reactor::Waker) -> Completions {
        Completions {
            q: Mutex::new(Vec::new()),
            waker,
        }
    }

    pub fn push(&self, conn: u64, seq: u64, reply: Reply) {
        self.q.lock().unwrap().push((conn, seq, reply));
        let _ = self.waker.wake();
    }

    /// Takes everything queued so far (reactor thread only).
    pub fn drain(&self) -> Vec<(u64, u64, Reply)> {
        std::mem::take(&mut *self.q.lock().unwrap())
    }

    /// Resets the underlying eventfd after its readiness event fired.
    pub fn drain_waker(&self) {
        self.waker.drain();
    }
}

/// Where a submitted command ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued; the reply will arrive on the submission's channel.
    Accepted,
    /// The session's class run-queue is at capacity — server backpressure.
    Busy,
    /// The session's own inbox is full — per-session backpressure.
    Overloaded,
    /// The pool is draining for shutdown.
    ShuttingDown,
}

/// One queued inbox command. `seq` is the inbox's enqueue sequence; a
/// [`SessionSlot::cancel`] snapshots the sequence so entries stamped below
/// the watermark fast-fail instead of executing. A sliced `RUN`'s
/// continuation keeps its original `seq`, which is what lets `CANCEL` cut
/// a run that is already in flight.
struct Entry {
    cmd: Command,
    reply_tx: ReplyTx,
    seq: u64,
}

struct Inbox {
    q: VecDeque<Entry>,
    /// True while the slot sits on a run queue (or is being executed with
    /// a requeue check still owed). At most one run-queue entry per session.
    scheduled: bool,
    /// Sequence stamped on the next enqueued entry.
    enq_seq: u64,
    /// Entries with `seq` below this watermark reply `ERR cancelled`.
    cancel_before: u64,
}

/// One session's scheduling state: inbox + priority + the session itself.
pub struct SessionSlot {
    pub id: u64,
    prio: AtomicU8,
    inbox: Mutex<Inbox>,
    session: Mutex<Session>,
}

impl SessionSlot {
    pub fn new(session: Session) -> Arc<SessionSlot> {
        Arc::new(SessionSlot {
            id: session.id,
            prio: AtomicU8::new(Priority::Normal as u8),
            inbox: Mutex::new(Inbox {
                q: VecDeque::new(),
                scheduled: false,
                enq_seq: 0,
                cancel_before: 0,
            }),
            session: Mutex::new(session),
        })
    }

    pub fn priority(&self) -> Priority {
        Priority::ALL[self.prio.load(Ordering::Relaxed) as usize]
    }

    /// Changes the scheduling class. An entry already sitting on a run
    /// queue finishes its current round under the old class; every requeue
    /// after that uses the new one.
    pub fn set_priority(&self, p: Priority) {
        self.prio.store(p as u8, Ordering::Relaxed);
    }

    /// Marks everything currently queued (and any in-flight sliced `RUN`)
    /// for fast-fail `ERR cancelled`. Later submissions are unaffected.
    /// Returns how many inbox entries were covered by the watermark.
    pub fn cancel(&self) -> usize {
        let mut inbox = self.inbox.lock().unwrap();
        inbox.cancel_before = inbox.enq_seq;
        inbox.q.len()
    }

    /// Runs `f` against the session outside the pool (tests, differential
    /// checks). Panics if a worker holds the session.
    pub fn with_session<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        f(&mut self.session.lock().unwrap())
    }
}

/// Cumulative pool counters (monotonic; read by `STATS?`-style probes and
/// the load harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub executed: u64,
    pub rejected_busy: u64,
    pub rejected_overloaded: u64,
    /// Sliced `RUN`s that hit a slice boundary and were requeued.
    pub preempted: u64,
    /// Inbox entries fast-failed by `CANCEL`.
    pub cancelled: u64,
}

/// The three per-class run queues plus the weighted-dequeue state.
/// Deterministic and lock-free internally — the caller holds the mutex —
/// so the scheduling policy is unit-testable in isolation.
struct RunQueues {
    q: [VecDeque<Arc<SessionSlot>>; Priority::COUNT],
    credits: [u32; Priority::COUNT],
    age: [u32; Priority::COUNT],
}

impl RunQueues {
    fn new() -> RunQueues {
        RunQueues {
            q: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            credits: CLASS_WEIGHTS,
            age: [0; Priority::COUNT],
        }
    }

    fn len(&self, class: Priority) -> usize {
        self.q[class as usize].len()
    }

    fn is_empty(&self) -> bool {
        self.q.iter().all(VecDeque::is_empty)
    }

    fn push(&mut self, class: Priority, slot: Arc<SessionSlot>) {
        self.q[class as usize].push_back(slot);
    }

    /// The class to serve next: an aged-out class wins outright, else the
    /// highest non-empty class with credits left; when the loaded classes
    /// have spent their credits, every class refills and the highest
    /// non-empty one is served.
    fn pick(&mut self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let loaded = |i: &usize| !self.q[*i].is_empty();
        let pick = (0..Priority::COUNT)
            .find(|i| loaded(i) && self.age[*i] >= AGE_PROMOTE)
            .or_else(|| (0..Priority::COUNT).find(|i| loaded(i) && self.credits[*i] > 0))
            .unwrap_or_else(|| {
                self.credits = CLASS_WEIGHTS;
                (0..Priority::COUNT)
                    .find(loaded)
                    .expect("checked non-empty")
            });
        Some(pick)
    }

    fn pop(&mut self) -> Option<(Priority, Arc<SessionSlot>)> {
        let pick = self.pick()?;
        for i in 0..Priority::COUNT {
            if i == pick {
                self.age[i] = 0;
            } else if !self.q[i].is_empty() {
                self.age[i] += 1;
            }
        }
        self.credits[pick] = self.credits[pick].saturating_sub(1);
        let slot = self.q[pick].pop_front().expect("picked a non-empty class");
        Some((Priority::ALL[pick], slot))
    }
}

struct PoolInner {
    runq: Mutex<RunQueues>,
    cv: Condvar,
    stop: AtomicBool,
    queue_depth: usize,
    /// Per-class run-queue capacity (each class gets the full cap, so
    /// saturating `batch` cannot shut `high` out of the queue).
    run_queue_cap: usize,
    executed: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_overloaded: AtomicU64,
    preempted: AtomicU64,
    cancelled: AtomicU64,
    /// Scheduling observability, present when the server runs with obs
    /// enabled.
    obs: Option<PoolObs>,
}

/// Pool-level metrics, pre-registered so the worker hot path never touches
/// the registry lock: per-command latency histograms, per-class run-queue
/// depth gauges, preemption/cancellation counters, and the per-slice
/// execution-latency histogram.
struct PoolObs {
    cmd_latency: CmdLatency,
    runq_depth: [Arc<obs::Gauge>; Priority::COUNT],
    preemptions: Arc<obs::Counter>,
    cancelled: Arc<obs::Counter>,
    slice_ns: Arc<obs::Histogram>,
}

impl PoolObs {
    fn new(registry: &Arc<obs::Registry>) -> PoolObs {
        PoolObs {
            cmd_latency: CmdLatency::new(registry),
            runq_depth: Priority::ALL.map(|p| {
                let labels = vec![("class".to_string(), p.name().to_string())];
                registry.gauge("serve_runq_depth", labels)
            }),
            preemptions: registry.counter("serve_preemptions_total", Vec::new()),
            cancelled: registry.counter("serve_cancelled_total", Vec::new()),
            slice_ns: registry.histogram("serve_run_slice_ns", Vec::new()),
        }
    }
}

/// One `serve_command_ns` histogram per command kind. A sliced `RUN`
/// records one sample per slice under `run`.
struct CmdLatency {
    by_kind: Vec<(&'static str, std::sync::Arc<obs::Histogram>)>,
}

impl CmdLatency {
    const KINDS: [&'static str; 11] = [
        "assert", "retract", "batch", "run", "cs", "wm", "stats", "fired", "snapshot", "migrate",
        "close",
    ];

    fn new(registry: &Arc<obs::Registry>) -> CmdLatency {
        CmdLatency {
            by_kind: Self::KINDS
                .iter()
                .map(|k| {
                    let labels = vec![("cmd".to_string(), k.to_string())];
                    (*k, registry.histogram("serve_command_ns", labels))
                })
                .collect(),
        }
    }

    fn record(&self, kind: &str, nanos: u64) {
        if let Some((_, h)) = self.by_kind.iter().find(|(k, _)| *k == kind) {
            h.record(nanos);
        }
    }
}

/// Fixed worker thread pool over session slots.
pub struct Pool {
    inner: Arc<PoolInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Spawns `workers` threads. `queue_depth` bounds each session's inbox;
    /// `run_queue_cap` bounds how many sessions of one class may be
    /// runnable at once. A `registry` turns on scheduling metrics.
    pub fn new(
        workers: usize,
        queue_depth: usize,
        run_queue_cap: usize,
        registry: Option<&Arc<obs::Registry>>,
    ) -> Pool {
        let inner = Arc::new(PoolInner {
            runq: Mutex::new(RunQueues::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            queue_depth: queue_depth.max(1),
            run_queue_cap: run_queue_cap.max(1),
            executed: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            preempted: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            obs: registry.map(PoolObs::new),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Pool {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Queues one command for a session. The reply — including an immediate
    /// rejection — always travels through `reply_tx`'s counterpart; on a
    /// non-`Accepted` outcome the *caller* sends the backpressure reply, so
    /// reply order matches submission order even under pipelining.
    pub fn submit(
        &self,
        slot: &Arc<SessionSlot>,
        cmd: Command,
        reply_tx: ReplyTx,
    ) -> SubmitOutcome {
        if self.inner.stop.load(Ordering::SeqCst) {
            return SubmitOutcome::ShuttingDown;
        }
        let mut inbox = slot.inbox.lock().unwrap();
        if inbox.q.len() >= self.inner.queue_depth {
            self.inner
                .rejected_overloaded
                .fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Overloaded;
        }
        if inbox.scheduled {
            let seq = inbox.enq_seq;
            inbox.enq_seq += 1;
            inbox.q.push_back(Entry { cmd, reply_tx, seq });
            return SubmitOutcome::Accepted;
        }
        let class = slot.priority();
        // Lock order inbox → runq, same as the worker's requeue path.
        let mut runq = self.inner.runq.lock().unwrap();
        if runq.len(class) >= self.inner.run_queue_cap {
            self.inner.rejected_busy.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Busy;
        }
        let seq = inbox.enq_seq;
        inbox.enq_seq += 1;
        inbox.q.push_back(Entry { cmd, reply_tx, seq });
        inbox.scheduled = true;
        runq.push(class, slot.clone());
        if let Some(o) = &self.inner.obs {
            o.runq_depth[class as usize].add(1);
        }
        drop(runq);
        drop(inbox);
        self.inner.cv.notify_one();
        SubmitOutcome::Accepted
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self.inner.executed.load(Ordering::Relaxed),
            rejected_busy: self.inner.rejected_busy.load(Ordering::Relaxed),
            rejected_overloaded: self.inner.rejected_overloaded.load(Ordering::Relaxed),
            preempted: self.inner.preempted.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
        }
    }

    pub fn is_stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: refuse new submissions, execute everything already
    /// queued, then join the workers.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for w in handles {
            let _ = w.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let (class, slot) = {
            let mut runq = inner.runq.lock().unwrap();
            loop {
                if let Some(popped) = runq.pop() {
                    break popped;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    // Stop requested and nothing runnable: the queues can
                    // only refill from requeues, which other workers finish
                    // before they exit the same way.
                    return;
                }
                runq = inner.cv.wait(runq).unwrap();
            }
        };
        if let Some(o) = &inner.obs {
            o.runq_depth[class as usize].add(-1);
        }
        // Pop one entry; the cancel watermark is read under the same lock
        // so a concurrent CANCEL either covers this entry or a later one,
        // never a torn in-between.
        let next = {
            let mut inbox = slot.inbox.lock().unwrap();
            let cancel_before = inbox.cancel_before;
            inbox.q.pop_front().map(|e| {
                let cancelled = e.seq < cancel_before;
                (e, cancelled)
            })
        };
        if let Some((entry, cancelled)) = next {
            if cancelled {
                inner.cancelled.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &inner.obs {
                    o.cancelled.inc();
                }
                entry.reply_tx.send(Reply::Err("cancelled".into()));
            } else {
                let kind = entry.cmd.label();
                let was_slice = matches!(entry.cmd, Command::RunSlice { .. });
                let t0 = inner.obs.as_ref().map(|_| std::time::Instant::now());
                let exec = slot.session.lock().unwrap().execute_step(entry.cmd);
                let yielded = matches!(exec, Exec::Yield(_));
                if let (Some(o), Some(t0)) = (&inner.obs, t0) {
                    let ns = t0.elapsed().as_nanos() as u64;
                    o.cmd_latency.record(kind, ns);
                    if was_slice || yielded {
                        o.slice_ns.record(ns);
                    }
                }
                match exec {
                    Exec::Done(reply) => {
                        inner.executed.fetch_add(1, Ordering::Relaxed);
                        // A vanished reader is not the session's problem.
                        entry.reply_tx.send(reply);
                    }
                    Exec::Yield(cont) => {
                        // Slice boundary: the continuation keeps the reply
                        // slot and the original sequence (so CANCEL still
                        // covers it) and goes back on the inbox *front* —
                        // no other command of this session can interleave
                        // into the middle of the run.
                        inner.preempted.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = &inner.obs {
                            o.preemptions.inc();
                        }
                        slot.inbox.lock().unwrap().q.push_front(Entry {
                            cmd: cont,
                            reply_tx: entry.reply_tx,
                            seq: entry.seq,
                        });
                    }
                }
            }
        }
        // Requeue while work remains; drain continues past `stop`. The
        // requeue path is exempt from the run-queue cap — a scheduled
        // session must always be able to finish its inbox.
        let mut inbox = slot.inbox.lock().unwrap();
        if inbox.q.is_empty() {
            inbox.scheduled = false;
        } else {
            let class = slot.priority();
            let mut runq = inner.runq.lock().unwrap();
            runq.push(class, slot.clone());
            if let Some(o) = &inner.obs {
                o.runq_depth[class as usize].add(1);
            }
            drop(runq);
            drop(inbox);
            inner.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{EngineBuilder, MatcherKind};

    const SRC: &str = "(literalize item n)
                       (p consume (item ^n <n>) --> (remove 1))";

    fn slot(id: u64) -> Arc<SessionSlot> {
        let eng = EngineBuilder::from_source(SRC).unwrap().build().unwrap();
        SessionSlot::new(Session::new(id, "t", eng, MatcherKind::default(), 1000))
    }

    /// A session whose `RUN` spins for thousands of cycles — used to wedge
    /// a worker so queue-overflow paths can be hit deterministically.
    /// `run_slice` 0: slicing off, the wedge must hold.
    fn spinner(id: u64) -> Arc<SessionSlot> {
        let src = "(literalize c n)
                   (p spin (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))";
        let mut eng = EngineBuilder::from_source(src).unwrap().build().unwrap();
        eng.make_wme("c", &[("n", ops5::Value::Int(0))]).unwrap();
        SessionSlot::new(Session::new(
            id,
            "spin",
            eng,
            MatcherKind::default(),
            20_000,
        ))
    }

    fn submit_ok(pool: &Pool, slot: &Arc<SessionSlot>, cmd: Command) -> mpsc::Receiver<Reply> {
        let (tx, rx) = mpsc::sync_channel(1);
        assert_eq!(
            pool.submit(slot, cmd, ReplyTx::Channel(tx)),
            SubmitOutcome::Accepted
        );
        rx
    }

    #[test]
    fn commands_on_one_session_execute_in_order() {
        let pool = Pool::new(2, 64, 64, None);
        let s = slot(1);
        let rxs: Vec<_> = (0..10)
            .map(|i| submit_ok(&pool, &s, Command::Assert(format!("item ^n {i}"))))
            .collect();
        let tags: Vec<u64> = rxs
            .iter()
            .map(|rx| match rx.recv().unwrap() {
                Reply::Ok(t) => t.parse().unwrap(),
                other => panic!("{other:?}"),
            })
            .collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(tags, sorted, "timetags issued in submission order");
        let rx = submit_ok(&pool, &s, Command::Run(100));
        assert!(rx.recv().unwrap().is_ok());
    }

    #[test]
    fn inbox_overflow_reports_overloaded() {
        let pool = Pool::new(1, 2, 64, None);
        let s = slot(1);
        // Wedge the sole worker on long spin runs so the other session's
        // inbox fills without being drained. One-command-per-pop means the
        // worker alternates, but each spin run takes thousands of cycles
        // while our submits are mutex pushes.
        // queue_depth applies to the spinner too: two runs fill its inbox
        // exactly and wedge the worker for tens of thousands of cycles.
        let spin = spinner(2);
        let spin_rxs: Vec<_> = (0..2)
            .map(|_| submit_ok(&pool, &spin, Command::Run(20_000)))
            .collect();
        let mut saw_overloaded = false;
        let mut rxs = Vec::new();
        for i in 0..8 {
            let (tx, rx) = mpsc::sync_channel(1);
            match pool.submit(
                &s,
                Command::Assert(format!("item ^n {i}")),
                ReplyTx::Channel(tx),
            ) {
                SubmitOutcome::Accepted => rxs.push(rx),
                SubmitOutcome::Overloaded => {
                    saw_overloaded = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            saw_overloaded,
            "queue_depth=2 must overflow within 8 submits"
        );
        assert!(pool.stats().rejected_overloaded >= 1);
        for rx in spin_rxs {
            let _ = rx.recv();
        }
        for rx in rxs {
            assert!(rx.recv().unwrap().is_ok());
        }
    }

    #[test]
    fn run_queue_cap_reports_busy() {
        // Wedge the sole worker, then contend two fresh sessions for a
        // run queue with capacity one.
        let pool = Pool::new(1, 64, 1, None);
        let spin = spinner(9);
        let spin_rx = submit_ok(&pool, &spin, Command::Run(20_000));
        let a = slot(1);
        let b = slot(2);
        // Wait until the worker has actually picked spin up (while spin
        // still sits on the queue, `a` itself bounces), then `a` takes the
        // only run-queue seat and `b` must bounce.
        let rx_a = loop {
            let (tx, rx) = mpsc::sync_channel(1);
            match pool.submit(&a, Command::Cs, ReplyTx::Channel(tx)) {
                SubmitOutcome::Accepted => break rx,
                SubmitOutcome::Busy => std::thread::yield_now(),
                other => panic!("unexpected {other:?}"),
            }
        };
        let (tx, _rx_b) = mpsc::sync_channel(1);
        assert_eq!(
            pool.submit(&b, Command::Cs, ReplyTx::Channel(tx)),
            SubmitOutcome::Busy
        );
        assert!(pool.stats().rejected_busy >= 1);
        let _ = spin_rx.recv();
        let _ = rx_a.recv();
    }

    #[test]
    fn per_class_caps_are_independent() {
        // One-seat queues: a Normal session filling its class must not
        // shut a High session out.
        let pool = Pool::new(1, 64, 1, None);
        let spin = spinner(9);
        let spin_rx = submit_ok(&pool, &spin, Command::Run(20_000));
        let a = slot(1);
        let rx_a = loop {
            let (tx, rx) = mpsc::sync_channel(1);
            match pool.submit(&a, Command::Cs, ReplyTx::Channel(tx)) {
                SubmitOutcome::Accepted => break rx,
                SubmitOutcome::Busy => std::thread::yield_now(),
                other => panic!("unexpected {other:?}"),
            }
        };
        // Normal class is now full (capacity 1) ...
        let b = slot(2);
        let (tx, _rx_b) = mpsc::sync_channel(1);
        assert_eq!(
            pool.submit(&b, Command::Cs, ReplyTx::Channel(tx)),
            SubmitOutcome::Busy
        );
        // ... but the high class still has its own seat.
        let hi = slot(3);
        hi.set_priority(Priority::High);
        let rx_hi = submit_ok(&pool, &hi, Command::Cs);
        let _ = spin_rx.recv();
        let _ = rx_a.recv();
        assert!(rx_hi.recv().unwrap().is_ok());
    }

    #[test]
    fn shutdown_drains_queued_commands() {
        let pool = Pool::new(2, 64, 64, None);
        let slots: Vec<_> = (0..4).map(slot).collect();
        let rxs: Vec<_> = slots
            .iter()
            .flat_map(|s| {
                (0..8)
                    .map(|i| submit_ok(&pool, s, Command::Assert(format!("item ^n {i}"))))
                    .collect::<Vec<_>>()
            })
            .collect();
        pool.shutdown();
        let (tx, _rx) = mpsc::sync_channel(1);
        assert_eq!(
            pool.submit(&slots[0], Command::Cs, ReplyTx::Channel(tx)),
            SubmitOutcome::ShuttingDown
        );
        // Every queued command completed before the workers exited.
        for rx in rxs {
            assert!(rx.try_recv().unwrap().is_ok());
        }
        assert_eq!(pool.stats().executed, 32);
    }

    #[test]
    fn priority_parses_and_names_roundtrip() {
        for p in Priority::ALL {
            assert_eq!(Priority::from_name(p.name()), Some(p));
            assert_eq!(Priority::from_name(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(Priority::from_name("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    /// The weighted-dequeue policy itself, in isolation: high dominates,
    /// but a loaded batch class is served at least once per credit round.
    #[test]
    fn weighted_dequeue_serves_batch_within_one_round() {
        let mut rq = RunQueues::new();
        // Keep every class loaded by re-pushing what we pop.
        for (i, p) in Priority::ALL.iter().enumerate() {
            rq.push(*p, slot(i as u64 + 1));
        }
        let mut counts = [0usize; Priority::COUNT];
        let mut batch_gap = 0usize;
        let mut max_batch_gap = 0usize;
        for _ in 0..220 {
            let (class, s) = rq.pop().unwrap();
            counts[class as usize] += 1;
            if class == Priority::Batch {
                batch_gap = 0;
            } else {
                batch_gap += 1;
                max_batch_gap = max_batch_gap.max(batch_gap);
            }
            rq.push(class, s);
        }
        // Weighted split ~ 16:4:1 over ten+ rounds.
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        assert!(counts[2] >= 10, "batch starved: {counts:?}");
        // One full credit round (16+4) is the worst case between batch pops.
        assert!(max_batch_gap <= CLASS_WEIGHTS[0] as usize + CLASS_WEIGHTS[1] as usize + 1);
    }

    /// Aging promotes a class that would otherwise wait behind refills.
    #[test]
    fn aging_promotes_a_skipped_class() {
        let mut rq = RunQueues::new();
        rq.push(Priority::Batch, slot(1));
        // Burn through rounds of high-only traffic; batch ages while high
        // is served, and must be picked no later than AGE_PROMOTE pops.
        let mut served_batch = None;
        for i in 0..(AGE_PROMOTE as usize + 2) {
            rq.push(Priority::High, slot(100 + i as u64));
            let (class, _) = rq.pop().unwrap();
            if class == Priority::Batch {
                served_batch = Some(i);
                break;
            }
        }
        assert!(
            served_batch.is_some(),
            "batch never served within AGE_PROMOTE+2 pops"
        );
    }

    /// CANCEL fast-fails everything queued at the time of the call but
    /// leaves the session usable for later submissions.
    #[test]
    fn cancel_fast_fails_queued_commands() {
        let pool = Pool::new(1, 64, 64, None);
        let spin = spinner(2);
        let spin_rx = submit_ok(&pool, &spin, Command::Run(20_000));
        let s = slot(1);
        let rxs: Vec<_> = (0..4)
            .map(|i| submit_ok(&pool, &s, Command::Assert(format!("item ^n {i}"))))
            .collect();
        let covered = s.cancel();
        assert!(covered >= 1, "cancel saw {covered} queued entries");
        let _ = spin_rx.recv();
        let mut cancelled = 0u64;
        for rx in rxs {
            match rx.recv().unwrap() {
                Reply::Err(e) if e == "cancelled" => cancelled += 1,
                Reply::Ok(_) => {} // popped before the watermark landed
                other => panic!("{other:?}"),
            }
        }
        assert!(cancelled >= 1, "no queued command was cancelled");
        assert_eq!(pool.stats().cancelled, cancelled);
        // The session survives: post-cancel submissions execute normally.
        let rx = submit_ok(&pool, &s, Command::Assert("item ^n 9".into()));
        assert!(rx.recv().unwrap().is_ok());
    }
}
