//! The program registry: named production-system profiles a session can be
//! opened on.
//!
//! A [`ProgramSpec`] is source plus initial working memory; building one
//! yields a fresh, independent [`Engine`] (own symbol table, own network,
//! own matcher threads). [`Registry::with_builtins`] loads every `*.ops`
//! file from a corpus directory under its file stem, plus the generated
//! `rubik` workload, so the server's sessions exercise both hand-written
//! corpus programs and the paper's benchmark generator.

use engine::{ActStrategy, Engine, EngineBuilder, EngineLimits, MatcherKind};
use ops5::{Result, Value};
use std::collections::BTreeMap;
use std::path::Path;
use workloads::{SetupVal, SetupWme};

/// A named program profile: OPS5 source plus initial working memory.
pub struct ProgramSpec {
    pub source: String,
    pub setup: Vec<SetupWme>,
}

impl ProgramSpec {
    pub fn from_source(source: impl Into<String>) -> ProgramSpec {
        ProgramSpec {
            source: source.into(),
            setup: Vec::new(),
        }
    }

    /// Builds a fresh engine for this spec: parse, compile, install the
    /// matcher, load the source's startup forms, then the setup WMEs.
    /// `act` pins the act strategy; `None` keeps the builder default (and
    /// with it the `OPS5_ACT` environment knob).
    pub fn build(
        &self,
        kind: MatcherKind,
        limits: EngineLimits,
        act: Option<ActStrategy>,
    ) -> Result<Engine> {
        let mut b = EngineBuilder::from_source(&self.source)?
            .matcher(kind)
            .limits(limits);
        if let Some(act) = act {
            b = b.act_strategy(act);
        }
        let mut eng = b.build()?;
        eng.load_startup()?;
        for wme in &self.setup {
            let sets: Vec<(String, Value)> = wme
                .sets
                .iter()
                .map(|(a, v)| {
                    let val = match v {
                        SetupVal::Sym(s) => eng.sym(s),
                        SetupVal::Int(i) => Value::Int(*i),
                    };
                    (a.clone(), val)
                })
                .collect();
            let set_refs: Vec<(&str, Value)> = sets.iter().map(|(a, v)| (a.as_str(), *v)).collect();
            eng.make_wme(&wme.class, &set_refs)?;
        }
        Ok(eng)
    }

    /// Builds a *bare* engine: parse, compile, install the matcher — but do
    /// NOT load startup forms or setup WMEs. This is the `RESTORE` path:
    /// the snapshot carries every WME (startup and setup included), so
    /// loading them here would double them up.
    pub fn build_empty(
        &self,
        kind: MatcherKind,
        limits: EngineLimits,
        act: Option<ActStrategy>,
    ) -> Result<Engine> {
        let mut b = EngineBuilder::from_source(&self.source)?
            .matcher(kind)
            .limits(limits);
        if let Some(act) = act {
            b = b.act_strategy(act);
        }
        b.build()
    }
}

/// Named program profiles available to `OPEN`.
#[derive(Default)]
pub struct Registry {
    specs: BTreeMap<String, ProgramSpec>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Loads every `*.ops` file under `programs_dir` (keyed by file stem)
    /// plus the generated `rubik` benchmark workload. Unreadable files are
    /// skipped — a server must come up even on a partial corpus.
    pub fn with_builtins(programs_dir: Option<&Path>) -> Registry {
        let mut reg = Registry::new();
        if let Some(dir) = programs_dir {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for e in entries.flatten() {
                    let path = e.path();
                    if path.extension().is_some_and(|x| x == "ops") {
                        if let (Some(stem), Ok(src)) = (
                            path.file_stem().and_then(|s| s.to_str()),
                            std::fs::read_to_string(&path),
                        ) {
                            reg.insert(stem, ProgramSpec::from_source(src));
                        }
                    }
                }
            }
        }
        let rubik = workloads::rubik::workload(workloads::rubik::RubikConfig {
            seed: 3,
            scramble_len: 5,
            plan: workloads::rubik::PlanMode::Inverse,
        });
        reg.insert(
            "rubik",
            ProgramSpec {
                source: rubik.source,
                setup: rubik.setup,
            },
        );
        reg
    }

    pub fn insert(&mut self, name: impl Into<String>, spec: ProgramSpec) {
        self.specs.insert(name.into(), spec);
    }

    pub fn get(&self, name: &str) -> Option<&ProgramSpec> {
        self.specs.get(name)
    }

    pub fn names(&self) -> Vec<&str> {
        self.specs.keys().map(|s| s.as_str()).collect()
    }
}

/// Maps a protocol matcher name to a [`MatcherKind`] via the canonical
/// [`MatcherKind::from_name`] table. The `psm` engine gets one match
/// process: the server multiplexes many sessions over few cores, so
/// parallelism lives across sessions, not inside one matcher.
pub fn matcher_kind(name: &str) -> std::result::Result<MatcherKind, String> {
    match MatcherKind::from_name(name) {
        Some(MatcherKind::Psm(cfg)) => Ok(MatcherKind::Psm(psm::PsmConfig {
            match_processes: 1,
            ..cfg
        })),
        Some(kind) => Ok(kind),
        None => Err(format!(
            "unknown matcher `{name}` (want {})",
            MatcherKind::NAMES.join("|")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_rubik_and_builds_it() {
        let reg = Registry::with_builtins(None);
        assert_eq!(reg.names(), vec!["rubik"]);
        let mut eng = reg
            .get("rubik")
            .unwrap()
            .build(MatcherKind::default(), EngineLimits::default(), None)
            .unwrap();
        assert!(eng.wm().len() > 50, "cube facelets loaded");
        let r = eng.run(10_000).unwrap();
        assert!(r.cycles > 0);
    }

    #[test]
    fn corpus_dir_is_loaded_by_stem() {
        let dir = std::env::temp_dir().join("serve-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("tiny.ops"),
            "(literalize a x)\n(p r (a ^x 1) --> (halt))",
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let reg = Registry::with_builtins(Some(&dir));
        assert!(reg.get("tiny").is_some());
        assert!(reg.get("notes").is_none());
        assert!(reg.get("rubik").is_some());
    }

    #[test]
    fn matcher_names_resolve() {
        for name in MatcherKind::NAMES {
            let kind = matcher_kind(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(kind.name(), *name, "registry preserves the kind");
        }
        assert!(matcher_kind("frob").is_err());
        assert!(matcher_kind("trace").is_err(), "trace needs a sink");
    }
}
