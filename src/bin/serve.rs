//! `ops5-serve` — the multi-session production-system server.
//!
//! Binds a TCP listener, loads the `programs/` corpus plus the generated
//! Rubik workload into the program registry, and serves the line protocol
//! (see `crates/serve/src/protocol.rs` or README.md) until a client sends
//! `SHUTDOWN`.
//!
//! ```text
//! Usage: ops5-serve [options]
//!
//!   --addr HOST:PORT         listen address (default 127.0.0.1:4805)
//!   --programs DIR           corpus directory (default programs)
//!   --workers N              worker threads (default 4)
//!   --queue-depth N          per-session inbox depth (default 16)
//!   --run-queue N            global run-queue capacity (default 1024)
//!   --max-cycles-per-run N   RUN clamp per command (default 10000)
//!   --run-slice N            preemption slice: a RUN executes at most N
//!                            cycles before its session is requeued behind
//!                            higher-priority work (0 = no slicing;
//!                            default: the OPS5_RUN_SLICE env knob, else 0)
//!   --max-wm N               per-session working-memory cap
//!   --max-total-cycles N     per-session lifetime cycle budget
//!   --matcher vs1|vs2|lisp|psm   default session matcher (default vs2)
//!   --act serial|parallel[:k]    act-phase strategy for session engines
//!                            (default: serial, or the OPS5_ACT env knob)
//!   --front-end threads|reactor  connection front-end (default reactor:
//!                            one epoll thread owns all sockets; threads =
//!                            the original two-threads-per-connection mode)
//!   --write-buf N            per-connection outbound buffer cap in bytes
//!                            before a slow client is disconnected
//!                            (reactor; default 262144)
//!   --max-pending N          per-connection queued-reply cap before a slow
//!                            client is disconnected (threads; default 4096)
//!   --metrics                enable the observability layer (METRICS?)
//!   --metrics-port P         also serve GET /metrics on 127.0.0.1:P
//!                            (0 = ephemeral; implies --metrics)
//!   --durability-dir DIR     per-session snapshot + change-log files, so
//!                            killed sessions recover via RESTORE
//!   --checkpoint-every N     firings between durability checkpoints
//!                            (default 256)
//! ```

use parallel_ops5::prelude::*;
use serve::matcher_kind;
use std::path::PathBuf;
use std::process::ExitCode;

fn parse_args() -> Result<(String, ServeConfig), String> {
    let mut addr = "127.0.0.1:4805".to_string();
    let mut cfg = ServeConfig {
        programs_dir: Some(PathBuf::from("programs")),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse = |s: String, flag: &str| s.parse::<u64>().map_err(|e| format!("{flag}: {e}"));
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = next_val(&mut args, "--addr")?,
            "--programs" => {
                cfg.programs_dir = Some(PathBuf::from(next_val(&mut args, "--programs")?))
            }
            "--workers" => {
                cfg.workers = parse(next_val(&mut args, "--workers")?, "--workers")? as usize
            }
            "--queue-depth" => {
                cfg.queue_depth =
                    parse(next_val(&mut args, "--queue-depth")?, "--queue-depth")? as usize
            }
            "--run-queue" => {
                cfg.run_queue_cap =
                    parse(next_val(&mut args, "--run-queue")?, "--run-queue")? as usize
            }
            "--max-cycles-per-run" => {
                cfg.max_cycles_per_run = parse(
                    next_val(&mut args, "--max-cycles-per-run")?,
                    "--max-cycles-per-run",
                )?
            }
            "--run-slice" => {
                cfg.run_slice_cycles = parse(next_val(&mut args, "--run-slice")?, "--run-slice")?
            }
            "--max-wm" => {
                cfg.limits.max_wm =
                    Some(parse(next_val(&mut args, "--max-wm")?, "--max-wm")? as usize)
            }
            "--max-total-cycles" => {
                cfg.limits.max_cycles = Some(parse(
                    next_val(&mut args, "--max-total-cycles")?,
                    "--max-total-cycles",
                )?)
            }
            "--matcher" => cfg.matcher = matcher_kind(&next_val(&mut args, "--matcher")?)?,
            "--act" => {
                let name = next_val(&mut args, "--act")?;
                cfg.act = Some(engine::ActStrategy::from_name(&name).ok_or_else(|| {
                    format!("--act {name} is not serial, parallel, or parallel:<max_group>")
                })?)
            }
            "--front-end" => cfg.front_end = next_val(&mut args, "--front-end")?.parse()?,
            "--write-buf" => {
                cfg.write_buf_cap =
                    parse(next_val(&mut args, "--write-buf")?, "--write-buf")? as usize
            }
            "--max-pending" => {
                cfg.max_pending_replies =
                    parse(next_val(&mut args, "--max-pending")?, "--max-pending")? as usize
            }
            "--metrics" => cfg.obs = ObsConfig::enabled(),
            "--durability-dir" => {
                cfg.durability_dir = Some(PathBuf::from(next_val(&mut args, "--durability-dir")?))
            }
            "--checkpoint-every" => {
                cfg.checkpoint_every = parse(
                    next_val(&mut args, "--checkpoint-every")?,
                    "--checkpoint-every",
                )?
            }
            "--metrics-port" => {
                cfg.obs = ObsConfig::enabled();
                cfg.metrics_port =
                    Some(parse(next_val(&mut args, "--metrics-port")?, "--metrics-port")? as u16)
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok((addr, cfg))
}

fn main() -> ExitCode {
    let (addr, cfg) = match parse_args() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("ops5-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ops5-serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("ops5-serve: listening on {}", server.local_addr());
    if let Some(m) = server.metrics_addr() {
        eprintln!("ops5-serve: metrics on http://{m}/metrics");
    }
    match server.run() {
        Ok(()) => {
            eprintln!("ops5-serve: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ops5-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
