//! `ops5` — a command-line OPS5 interpreter.
//!
//! Loads an OPS5 source file (productions plus top-level `(make ...)`
//! startup forms), runs the recognize-act loop on the chosen match engine,
//! and reports what happened.
//!
//! ```text
//! Usage: ops5 <file.ops> [options]
//!
//!   --matcher vs1|vs2|lisp|psm|col   match engine (default vs2)
//!   --procs N                    psm: match processes (default 4)
//!   --queues N                   psm: task queues (default 2)
//!   --mrsw                       psm: MRSW hash-line locks
//!   --max-cycles N               cycle budget (default 100000)
//!   --trace                      print each production firing
//!   --wm                         dump working memory at the end
//!   --network                    print the compiled Rete network and exit
//!   --print                      pretty-print the parsed program and exit
//!   --stats                      print match statistics
//! ```

use parallel_ops5::prelude::*;
use std::process::ExitCode;

struct Opts {
    file: String,
    matcher: String,
    procs: usize,
    queues: usize,
    mrsw: bool,
    max_cycles: u64,
    trace: bool,
    dump_wm: bool,
    network: bool,
    print: bool,
    stats: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Opts {
        file: String::new(),
        matcher: "vs2".into(),
        procs: 4,
        queues: 2,
        mrsw: false,
        max_cycles: 100_000,
        trace: false,
        dump_wm: false,
        network: false,
        print: false,
        stats: false,
    };
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--matcher" => opts.matcher = next_val(&mut args, "--matcher")?,
            "--procs" => {
                opts.procs = next_val(&mut args, "--procs")?
                    .parse()
                    .map_err(|e| format!("--procs: {e}"))?
            }
            "--queues" => {
                opts.queues = next_val(&mut args, "--queues")?
                    .parse()
                    .map_err(|e| format!("--queues: {e}"))?
            }
            "--max-cycles" => {
                opts.max_cycles = next_val(&mut args, "--max-cycles")?
                    .parse()
                    .map_err(|e| format!("--max-cycles: {e}"))?
            }
            "--mrsw" => opts.mrsw = true,
            "--trace" => opts.trace = true,
            "--wm" => opts.dump_wm = true,
            "--network" => opts.network = true,
            "--print" => opts.print = true,
            "--stats" => opts.stats = true,
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            file => {
                if !opts.file.is_empty() {
                    return Err("multiple input files".into());
                }
                opts.file = file.to_string();
            }
        }
    }
    if opts.file.is_empty() {
        return Err("no input file".into());
    }
    Ok(opts)
}

fn usage() {
    eprintln!("Usage: ops5 <file.ops> [--matcher vs1|vs2|lisp|psm|col] [--procs N] [--queues N]");
    eprintln!(
        "            [--mrsw] [--max-cycles N] [--trace] [--wm] [--network] [--print] [--stats]"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let prog = match Program::from_source(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} productions, {} startup elements",
        opts.file,
        prog.productions.len(),
        prog.startup.len()
    );

    if opts.print {
        print!("{}", ops5::printer::print_program(&prog));
        return ExitCode::SUCCESS;
    }
    if opts.network {
        let net = match Network::compile(&prog) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", rete::dot::to_text(&net, &prog.symbols));
        return ExitCode::SUCCESS;
    }

    // The canonical name table picks the kind; the psm flags then refine
    // its configuration.
    let kind = match MatcherKind::from_name(&opts.matcher) {
        Some(MatcherKind::Psm(_)) => MatcherKind::Psm(PsmConfig {
            match_processes: opts.procs,
            queues: opts.queues,
            lock_scheme: if opts.mrsw {
                LockScheme::Mrsw
            } else {
                LockScheme::Simple
            },
            buckets: 16384,
            scheduler: psm::SchedulerKind::SpinQueues,
        }),
        Some(kind) => kind,
        None => {
            eprintln!(
                "error: unknown matcher {} (want {})",
                opts.matcher,
                MatcherKind::NAMES.join("|")
            );
            return ExitCode::FAILURE;
        }
    };
    let mut engine = match EngineBuilder::new(prog)
        .matcher(kind)
        .echo_writes(true)
        .build()
    {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{}", engine.network().summary());

    if let Err(e) = engine.load_startup() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let started = std::time::Instant::now();
    let result = if opts.trace {
        // Step so each firing can be reported.
        let res;
        loop {
            match engine.step() {
                Ok(Some(inst)) => {
                    let tags: Vec<String> =
                        inst.wmes.iter().map(|w| w.timetag.to_string()).collect();
                    eprintln!(
                        "{:>6}. {} [{}]",
                        engine.cycles(),
                        engine.prog.prod_name(inst.prod),
                        tags.join(" ")
                    );
                    if engine.cycles() >= opts.max_cycles {
                        res = Ok(RunResult {
                            cycles: engine.cycles(),
                            reason: StopReason::CycleLimit,
                        });
                        break;
                    }
                }
                Ok(None) => {
                    res = Ok(RunResult {
                        cycles: engine.cycles(),
                        reason: StopReason::Quiescent,
                    });
                    break;
                }
                Err(e) => {
                    res = Err(e);
                    break;
                }
            }
        }
        res
    } else {
        engine.run(opts.max_cycles)
    };
    let elapsed = started.elapsed();

    match result {
        Ok(r) => {
            eprintln!(
                "{} cycles in {:.3}s ({:?})",
                engine.cycles(),
                elapsed.as_secs_f64(),
                r.reason
            );
        }
        Err(e) => {
            eprintln!("runtime error after {} cycles: {e}", engine.cycles());
            return ExitCode::FAILURE;
        }
    }

    if opts.stats {
        let s = engine.match_stats();
        eprintln!(
            "match stats: {} wme-changes, {} activations ({} alpha), {} conflict-set changes",
            s.wme_changes, s.activations, s.alpha_activations, s.cs_changes
        );
        eprintln!(
            "  opposite-memory tokens examined: left {:.1} avg, right {:.1} avg",
            s.avg_opp_left(),
            s.avg_opp_right()
        );
        eprintln!(
            "  join activations: {} ({} null, {} skipped by unlinking)",
            s.join_activations, s.null_activations, s.null_skipped
        );
    }

    if opts.dump_wm {
        eprintln!("working memory ({} elements):", engine.wm().len());
        let mut wmes: Vec<_> = engine.wm().iter().cloned().collect();
        wmes.sort_by_key(|w| w.timetag);
        for w in wmes {
            let attrs = engine
                .prog
                .classes
                .info(w.class)
                .map(|i| i.attrs.clone())
                .unwrap_or_default();
            println!(
                "{:>6}: {}",
                w.timetag,
                w.display(&engine.prog.symbols, &attrs)
            );
        }
    }
    ExitCode::SUCCESS
}
