//! `ops5-router` — consistent-hash session sharding across `ops5-serve`
//! backends.
//!
//! Accepts client connections speaking the serve line protocol and pins
//! each one to a backend chosen by a consistent-hash ring (FNV-1a, 64
//! virtual nodes per backend by default). A connection whose first line is
//! `ADMIN` gets the operator dialect instead: `RING?`, `DRAIN <i>`
//! (migrate backend `i`'s sessions away via `SNAPSHOT?`/`RESTORE`),
//! `STATS?`, `SHUTDOWN`.
//!
//! ```text
//! Usage: ops5-router --backend HOST:PORT [--backend HOST:PORT ...] [options]
//!
//!   --addr HOST:PORT   listen address (default 127.0.0.1:4806)
//!   --backend ADDR     an ops5-serve backend; repeat per backend
//!   --replicas N       virtual nodes per backend on the ring (default 64)
//! ```

use serve::{Router, RouterConfig};
use std::net::SocketAddr;
use std::process::ExitCode;

fn parse_args() -> Result<(String, RouterConfig), String> {
    let mut addr = "127.0.0.1:4806".to_string();
    let mut backends: Vec<SocketAddr> = Vec::new();
    let mut replicas = 64usize;
    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = next_val(&mut args, "--addr")?,
            "--backend" => {
                let v = next_val(&mut args, "--backend")?;
                backends.push(v.parse().map_err(|e| format!("--backend {v}: {e}"))?);
            }
            "--replicas" => {
                replicas = next_val(&mut args, "--replicas")?
                    .parse()
                    .map_err(|e| format!("--replicas: {e}"))?
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if backends.is_empty() {
        return Err("at least one --backend is required".into());
    }
    let mut cfg = RouterConfig::new(backends);
    cfg.replicas = replicas.max(1);
    Ok((addr, cfg))
}

fn main() -> ExitCode {
    let (addr, cfg) = match parse_args() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("ops5-router: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n = cfg.backends.len();
    let router = match Router::bind(&addr, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ops5-router: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "ops5-router: listening on {} ({n} backends)",
        router.local_addr()
    );
    match router.run() {
        Ok(()) => {
            eprintln!("ops5-router: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ops5-router: {e}");
            ExitCode::FAILURE
        }
    }
}
