//! # parallel-ops5 — a Rust reproduction of *Parallel OPS5 on the Encore Multimax* (ICPP 1988)
//!
//! This workspace rebuilds PSM-E — Gupta, Forgy, Kalp, Newell and Tambe's
//! parallel OPS5 implementation — end to end:
//!
//! * [`ops5`] — the OPS5 language: parser, working-memory elements, matcher API;
//! * [`rete`] — the compiled Rete network with list (*vs1*) and global
//!   hash-table (*vs2*) token memories and the sequential matcher;
//! * [`engine`] — the recognize-act interpreter (conflict resolution,
//!   threaded-code RHS evaluation);
//! * [`lispsim`] — the interpretive lisp-style baseline (the Table 4-4
//!   comparison);
//! * [`psm`] — the parallel matcher itself: TTAS spin locks, MRSW hash-line
//!   locks, multi-queue task scheduling, conjugate-pair handling, and the
//!   task-trace recorder;
//! * [`multimax`] — a discrete-event Encore Multimax simulator that replays
//!   recorded task traces to regenerate the paper's speed-up and contention
//!   tables on any host;
//! * [`workloads`] — the three benchmark programs rebuilt: Rubik, Tourney
//!   (pathological and fixed), and a Weaver-scale generated VLSI router;
//! * [`serve`] — a multi-session TCP server multiplexing many independent
//!   engines over a bounded worker pool, with batched ingestion and
//!   explicit backpressure (the `ops5-serve` binary).
//!
//! ## Quickstart
//!
//! ```
//! use parallel_ops5::prelude::*;
//!
//! let src = "(p find-colored-block
//!              (goal ^type find-block ^color <c>)
//!              (block ^id <i> ^color <c> ^selected no)
//!              -->
//!              (modify 2 ^selected yes))";
//! let mut engine = EngineBuilder::from_source(src).unwrap().vs2().build().unwrap();
//! let red = engine.sym("red");
//! let no = engine.sym("no");
//! let fb = engine.sym("find-block");
//! engine.make_wme("goal", &[("type", fb), ("color", red)]).unwrap();
//! engine.make_wme("block", &[("id", Value::Int(1)), ("color", red), ("selected", no)]).unwrap();
//! let result = engine.run(10).unwrap();
//! assert_eq!(result.cycles, 1);
//! ```
//!
//! See `examples/` for the paper's workloads and `crates/bench` for the
//! binaries that regenerate every table of the evaluation section.

pub use engine;
pub use lispsim;
pub use multimax;
pub use obs;
pub use ops5;
pub use psm;
pub use rete;
pub use serve;
pub use workloads;

/// Common imports for applications.
pub mod prelude {
    pub use engine::{
        ActStats, ActStrategy, Engine, EngineBuilder, MatcherKind, RunResult, StopReason,
    };
    pub use multimax::{simulate, SimConfig, SimResult};
    pub use obs::ObsConfig;
    pub use ops5::{
        ChangeBatch, CsChange, Instantiation, MatchStats, Matcher, PhaseNanos, Pred, ProdId,
        Program, QuiesceReport, Sign, SymbolId, Value, Wme, WmeChange, WmeRef,
    };
    pub use psm::{LockScheme, ParMatcher, PsmConfig};
    pub use rete::network::Network;
    pub use rete::{HashMemConfig, NetworkOptions, NetworkSummary, SeqMatcher};
    pub use serve::{Client, ServeConfig, Server};
    pub use workloads::{build_engine, run_workload, MatcherChoice, Workload};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let p = Program::from_source("(p q (a ^x 1) --> (halt))").unwrap();
        let net = Network::compile(&p).unwrap();
        assert_eq!(net.n_patterns(), 1);
    }
}
