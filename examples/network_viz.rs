//! Network visualization: regenerates the paper's Figure 2-2.
//!
//! Compiles the p1/p2 productions from the paper and prints both a text
//! summary and Graphviz `dot` source for the resulting Rete network,
//! showing the shared constant-test nodes, the coalesced memory/two-input
//! nodes, the not-node for p1's negated C3 element, and the terminals.
//!
//! Run with: `cargo run --example network_viz [--dot]`

use parallel_ops5::prelude::*;

const FIG22: &str = "
(p p1 (C1 ^attr1 <x> ^attr2 12)
      (C2 ^attr1 15 ^attr2 <x>)
    - (C3 ^attr1 <x>)
  -->
  (remove 2))
(p p2 (C2 ^attr1 15 ^attr2 <y>)
      (C4 ^attr1 <y>)
  -->
  (modify 1 ^attr1 12))
";

fn main() {
    let prog = Program::from_source(FIG22).expect("parse Figure 2-2 productions");
    let net = Network::compile(&prog).expect("compile");

    println!(
        "Figure 2-2 network: {} constant-test patterns (C2 shared), {} joins",
        net.n_patterns(),
        net.n_joins()
    );
    println!();
    print!("{}", rete::dot::to_text(&net, &prog.symbols));

    if std::env::args().any(|a| a == "--dot") {
        println!();
        println!("{}", rete::dot::to_dot(&net, &prog.symbols));
    } else {
        println!();
        println!("(pass --dot for Graphviz source)");
    }
}
