//! Quickstart: the paper's Figure 2-1 production, end to end.
//!
//! Builds a tiny blocks-world program, runs it on the optimized sequential
//! engine (vs2) and then on the parallel PSM-E matcher, and shows that both
//! reach the same working-memory state.
//!
//! Run with: `cargo run --example quickstart`

use parallel_ops5::prelude::*;

const SRC: &str = "
; Figure 2-1 of the paper.
(literalize goal type color)
(literalize block id color selected)
(p find-colored-block
  (goal ^type find-block ^color <c>)
  (block ^id <i> ^color <c> ^selected no)
  -->
  (write selected block <i> (crlf))
  (modify 2 ^selected yes))
";

fn run(mut engine: Engine, label: &str) {
    let red = engine.sym("red");
    let blue = engine.sym("blue");
    let no = engine.sym("no");
    let fb = engine.sym("find-block");
    engine
        .make_wme("goal", &[("type", fb), ("color", red)])
        .unwrap();
    for (id, color) in [(1, blue), (2, red), (3, red), (4, blue)] {
        engine
            .make_wme(
                "block",
                &[("id", Value::Int(id)), ("color", color), ("selected", no)],
            )
            .unwrap();
    }

    let result = engine.run(100).unwrap();
    println!(
        "[{label}] fired {} productions ({:?})",
        result.cycles, result.reason
    );
    for line in engine.output() {
        println!("[{label}]   {line}");
    }
    let stats = engine.match_stats();
    println!(
        "[{label}] match stats: {} wme-changes, {} node activations, {} conflict-set changes",
        stats.wme_changes, stats.activations, stats.cs_changes
    );
}

fn main() {
    let eng = EngineBuilder::from_source(SRC)
        .expect("parse")
        .vs2()
        .build()
        .expect("build vs2");
    run(eng, "vs2 sequential");

    let cfg = PsmConfig {
        match_processes: 3,
        queues: 2,
        ..Default::default()
    };
    let eng = EngineBuilder::from_source(SRC)
        .expect("parse")
        .psm(cfg)
        .build()
        .expect("build psm");
    run(eng, "psm-e 1+3");
}
