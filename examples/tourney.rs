//! Tourney: round-robin scheduling, pathological vs fixed.
//!
//! Demonstrates the paper's §4.2 lesson: the pathological variant's pairing
//! production has condition elements with no common variables (a
//! cross-product join — every token in one hash line), while the fixed
//! variant joins through equality tests. Both produce valid schedules; the
//! match statistics show where the work goes.
//!
//! Run with: `cargo run --release --example tourney [teams]`

use parallel_ops5::prelude::*;
use workloads::tourney::{self, TourneyConfig, Variant};

fn main() {
    let teams: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    for variant in [Variant::Pathological, Variant::Fixed] {
        let w = tourney::workload(TourneyConfig { teams, variant });
        let (engine, result) = run_workload(&w, &MatcherChoice::Vs2).expect("tourney");
        let stats = engine.match_stats();
        println!(
            "[{:?}] {} teams: {} cycles, {} wme-changes, {} activations",
            variant, teams, result.cycles, stats.wme_changes, stats.activations
        );
        println!(
            "[{:?}]   avg tokens examined in opposite memory: left {:.1}, right {:.1}",
            variant,
            stats.avg_opp_left(),
            stats.avg_opp_right()
        );

        // Print the schedule itself.
        let game = engine.prog.symbols.get("game").unwrap();
        let games = engine.wm().of_class(game);
        let mut by_round: std::collections::BTreeMap<i64, Vec<String>> = Default::default();
        for g in &games {
            if let (Value::Int(r), Value::Sym(h), Value::Sym(a)) =
                (g.field(0), g.field(1), g.field(2))
            {
                by_round.entry(r).or_default().push(format!(
                    "{}-{}",
                    engine.prog.symbols.name(h),
                    engine.prog.symbols.name(a)
                ));
            }
        }
        for (r, gs) in &by_round {
            println!("[{variant:?}]   round {r}: {}", gs.join("  "));
        }
    }
}
