//! Rubik: scramble a cube, then watch the production system solve it.
//!
//! The cube lives entirely in working memory (54 facelet WMEs); the 18 move
//! productions were generated from 3D rotation permutations; the plan is
//! executed and verified by rule firings. Runs the same program on the
//! sequential vs2 engine and on PSM-E with several match processes.
//!
//! Run with: `cargo run --release --example rubik [scramble-length]`

use parallel_ops5::prelude::*;
use std::time::Instant;
use workloads::rubik::{self, PlanMode, RubikConfig};

fn main() {
    let scramble_len: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    let cfg = RubikConfig {
        seed: 2026,
        scramble_len,
        plan: PlanMode::Inverse,
    };
    println!("scramble length: {scramble_len}");

    for choice in [
        MatcherChoice::Vs1,
        MatcherChoice::Vs2,
        MatcherChoice::Psm(PsmConfig {
            match_processes: 3,
            queues: 4,
            lock_scheme: LockScheme::Simple,
            buckets: 1024,
            scheduler: psm::SchedulerKind::SpinQueues,
        }),
    ] {
        let w = rubik::workload(cfg);
        let started = Instant::now();
        let (engine, result) = run_workload(&w, &choice).expect("rubik run");
        let elapsed = started.elapsed();
        let stats = engine.match_stats();
        println!(
            "[{:>6}] {:>5} cycles, {:>6} wme-changes, {:>8} activations, {:?} ({:.1?})",
            choice.label(),
            result.cycles,
            stats.wme_changes,
            stats.activations,
            result.reason,
            elapsed,
        );
        for line in engine.output() {
            println!("[{:>6}]   rule output: {line}", choice.label());
        }
    }

    // Show the solver itself on a short scramble.
    let scr = rubik::scramble(7, 4);
    let mut cube = rubik::Cube::solved();
    cube.apply_seq(&scr);
    let plan = rubik::solve_iddfs(&cube, 4).expect("IDDFS solution");
    println!(
        "IDDFS found a {}-move solution for a 4-move scramble: {}",
        plan.len(),
        plan.iter().map(|m| m.name()).collect::<Vec<_>>().join(" ")
    );
}
