//! Weaver: route a two-layer grid with a generated ~600-rule expert.
//!
//! Prints the routed board: layer 0 routes east-west, layer 1 north-south,
//! vias connect them. Each net's wire is shown by its id.
//!
//! Run with: `cargo run --release --example weaver [width] [height] [nets]`

use parallel_ops5::prelude::*;
use workloads::weaver::{self, WeaverConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let width: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let height: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let nets: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let cfg = WeaverConfig {
        width,
        height,
        kinds: 12,
        nets,
        blocked_pct: 6,
        seed: 11,
    };
    let w = weaver::workload(cfg);
    println!("{} — {} productions", w.name, {
        let p = Program::from_source(&w.source).unwrap();
        p.productions.len()
    });

    let (engine, result) = run_workload(&w, &MatcherChoice::Vs2).expect("weaver run");
    let stats = engine.match_stats();
    println!(
        "{} cycles, {} wme-changes, {} node activations ({:?})",
        result.cycles, stats.wme_changes, stats.activations, result.reason
    );

    // Net statuses.
    let net_class = engine.prog.symbols.get("net").unwrap();
    for n in engine.wm().of_class(net_class) {
        if let (Value::Int(id), Value::Sym(st)) = (n.field(0), n.field(2)) {
            println!("net {id}: {}", engine.prog.symbols.name(st));
        }
    }

    // Draw the board, one grid per layer.
    let cell_class = engine.prog.symbols.get("cell").unwrap();
    let mut grid = vec![vec![vec!['.'; width]; height]; 2];
    for c in engine.wm().of_class(cell_class) {
        let (Value::Int(x), Value::Int(y), Value::Int(layer)) =
            (c.field(1), c.field(2), c.field(3))
        else {
            continue;
        };
        let state = c.field(4);
        let ch = if Some(state) == engine.prog.symbols.get("blocked").map(Value::Sym) {
            '#'
        } else if let Value::Int(netid) = c.field(5) {
            char::from_digit((netid % 36) as u32, 36).unwrap_or('?')
        } else {
            '.'
        };
        grid[layer as usize][y as usize][x as usize] = ch;
    }
    for (l, layer) in grid.iter().enumerate() {
        println!(
            "layer {l} ({}):",
            if l == 0 { "east-west" } else { "north-south" }
        );
        for row in layer {
            println!("  {}", row.iter().collect::<String>());
        }
    }
}
