//! Integration tests for the `ops5` command-line interpreter.

use std::process::Command;

fn ops5() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ops5"))
}

#[test]
fn runs_blocks_program() {
    let out = ops5()
        .args(["programs/blocks.ops"])
        .output()
        .expect("run ops5");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("tower complete"), "stdout: {stdout}");
    assert!(stderr.contains("3 cycles"), "stderr: {stderr}");
}

#[test]
fn all_matchers_agree_on_blocks() {
    for matcher in ["vs1", "vs2", "lisp", "psm"] {
        let out = ops5()
            .args(["programs/blocks.ops", "--matcher", matcher])
            .output()
            .expect("run ops5");
        assert!(out.status.success(), "{matcher} failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("tower complete"), "{matcher}: {stdout}");
    }
}

#[test]
fn print_roundtrips_through_cli() {
    let out = ops5()
        .args(["programs/blocks.ops", "--print"])
        .output()
        .expect("run ops5");
    assert!(out.status.success());
    let printed = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(printed.contains("(p stack"));
    assert!(printed.contains("(literalize block"));
    // The printed output is itself a runnable program.
    let dir = std::env::temp_dir().join("ops5-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("printed.ops");
    std::fs::write(&path, &printed).unwrap();
    let out2 = ops5()
        .arg(path.to_str().unwrap())
        .output()
        .expect("run printed");
    assert!(out2.status.success());
    assert!(String::from_utf8_lossy(&out2.stdout).contains("tower complete"));
}

#[test]
fn network_dump() {
    let out = ops5()
        .args(["programs/blocks.ops", "--network"])
        .output()
        .expect("run ops5");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("root"));
    assert!(stdout.contains("terminal: stack"));
}

#[test]
fn wm_dump_shows_final_state() {
    let out = ops5()
        .args(["programs/blocks.ops", "--wm"])
        .output()
        .expect("run ops5");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("^on b"), "c sits on b: {stdout}");
}

#[test]
fn bad_file_fails_cleanly() {
    let out = ops5().arg("does-not-exist.ops").output().expect("run ops5");
    assert!(!out.status.success());
}

#[test]
fn parse_error_reported_with_position() {
    let dir = std::env::temp_dir().join("ops5-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.ops");
    std::fs::write(&path, "(p broken (a ^x 1) --> (explode))").unwrap();
    let out = ops5()
        .arg(path.to_str().unwrap())
        .output()
        .expect("run ops5");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown RHS action"), "{stderr}");
}

#[test]
fn monkey_and_bananas_plans_correctly() {
    let out = ops5()
        .args(["programs/monkey.ops"])
        .output()
        .expect("run ops5");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The full means-ends plan, in order.
    let steps = [
        "climbing down",
        "walking to loc-b",
        "grabbing ladder",
        "carrying ladder to loc-c",
        "dropping ladder",
        "climbing the ladder",
        "grabbing bananas",
        "the monkey has the bananas",
    ];
    let mut pos = 0;
    for step in steps {
        let found = stdout[pos..]
            .find(step)
            .unwrap_or_else(|| panic!("step '{step}' missing or out of order in:\n{stdout}"));
        pos += found;
    }
}

#[test]
fn monkey_plan_is_matcher_independent() {
    let reference = ops5()
        .args(["programs/monkey.ops"])
        .output()
        .unwrap()
        .stdout;
    for matcher in ["vs1", "lisp", "psm"] {
        let out = ops5()
            .args(["programs/monkey.ops", "--matcher", matcher])
            .output()
            .unwrap();
        assert_eq!(out.stdout, reference, "{matcher} diverged");
    }
}

#[test]
fn hanoi_solves_four_disks() {
    let out = ops5().args(["programs/hanoi.ops"]).output().expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hanoi complete in 15 moves"), "{stdout}");
    // The first three moves of the textbook 4-disk solution, in order.
    let moves: Vec<&str> = stdout.lines().filter(|l| l.starts_with("move ")).collect();
    assert_eq!(moves.len(), 15);
    assert_eq!(moves[0], "move disk left to middle");
    assert_eq!(moves[1], "move disk left to right");
    assert_eq!(moves[2], "move disk middle to right");
    // The largest disk crosses exactly once, halfway through.
    assert_eq!(moves[7], "move disk left to right");
}

#[test]
fn hanoi_is_matcher_independent() {
    let reference = ops5().args(["programs/hanoi.ops"]).output().unwrap().stdout;
    for matcher in ["vs1", "lisp", "psm"] {
        let out = ops5()
            .args(["programs/hanoi.ops", "--matcher", matcher])
            .output()
            .unwrap();
        assert_eq!(out.stdout, reference, "{matcher} diverged");
    }
}

#[test]
fn fibonacci_computes() {
    let out = ops5()
        .args(["programs/fibonacci.ops"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fib 20 is 6765"), "{stdout}");
}
