//! Durability fault injection, driving `serve::Session` directly so the
//! failure window can be placed precisely. The container runs as root
//! (permission bits are ignored), so checkpoint failures are injected by
//! parking a *directory* at the snapshot's tmp path — `File::create`
//! fails on it regardless of uid.

use serve::{matcher_kind, Command, ProgramSpec, Reply, Session};
use std::fs;
use std::path::{Path, PathBuf};

const SRC: &str = "(literalize item n)
                   (literalize sum total)
                   (p add (item ^n <n>) (sum ^total <t>)
                      --> (remove 1) (modify 2 ^total (compute <t> + <n>)))";

fn fresh_session(id: u64) -> Session {
    let eng = ProgramSpec::from_source(SRC)
        .build_empty(matcher_kind("vs2").unwrap(), Default::default(), None)
        .unwrap();
    Session::new(id, "adder", eng, matcher_kind("vs2").unwrap(), 10_000)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ops5-dfault-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn ok(s: &mut Session, cmd: Command) -> String {
    match s.execute(cmd) {
        Reply::Ok(p) => p,
        other => panic!("expected OK, got {other:?}"),
    }
}

fn fired(s: &mut Session) -> Vec<String> {
    match s.execute(Command::Fired) {
        Reply::Multi { lines, .. } => lines,
        other => panic!("expected FIRED lines, got {other:?}"),
    }
}

fn seed(s: &mut Session, items: &[i64]) {
    ok(s, Command::Assert("sum ^total 0".into()));
    for n in items {
        ok(s, Command::Assert(format!("item ^n {n}")));
    }
}

/// Rebuilds a session purely from what is on disk — the kill/restart path.
fn recover(dir: &Path, id: u64) -> (Session, usize) {
    let snap = fs::read_to_string(Session::snap_path(dir, id)).unwrap();
    let log = fs::read_to_string(Session::log_path(dir, id)).unwrap_or_default();
    let eng = ProgramSpec::from_source(SRC)
        .build_empty(matcher_kind("vs2").unwrap(), Default::default(), None)
        .unwrap();
    Session::restore(
        id,
        "adder",
        eng,
        matcher_kind("vs2").unwrap(),
        10_000,
        &snap,
        &log,
    )
    .unwrap()
}

/// The tmp path `checkpoint()` writes through before renaming onto the
/// real snapshot.
fn block_checkpoint(dir: &Path, id: u64) -> PathBuf {
    let tmp = Session::snap_path(dir, id).with_extension("snap.tmp");
    fs::create_dir(&tmp).unwrap();
    tmp
}

/// A checkpoint failure mid-session must not clobber the command's reply
/// or lose records: the session degrades, keeps appending to the log, and
/// both a kill-recovery and an in-place retry converge on the reference.
#[test]
fn failed_checkpoint_degrades_then_recovers_with_zero_lost_records() {
    let dir = tmp_dir("ckpt");

    // Uninterrupted reference run of the same command stream.
    let mut reference = fresh_session(0);
    seed(&mut reference, &[1, 2, 3, 4, 5]);
    ok(&mut reference, Command::Run(2));
    ok(&mut reference, Command::Run(2));
    ok(&mut reference, Command::Run(100));
    let want = fired(&mut reference);
    // No durability attached → STATS? carries no durability field at all.
    assert!(!ok(&mut reference, Command::Stats).contains("durability="));

    let mut s = fresh_session(7);
    s.attach_durability(&dir, 2).unwrap();
    seed(&mut s, &[1, 2, 3, 4, 5]);

    // Wedge the checkpoint path, then cross the checkpoint_every=2
    // threshold: the log append succeeds, the checkpoint fails.
    let tmp = block_checkpoint(&dir, 7);
    let run = ok(&mut s, Command::Run(2));
    assert!(run.contains("cycles=2"), "reply clobbered: {run}");
    assert!(s.durability_degraded());
    assert!(ok(&mut s, Command::Stats).contains("durability=degraded"));

    // Kill here: snapshot is stale but snapshot+log still replays every
    // record — nothing was lost to the failed checkpoint.
    {
        let (mut dead, replayed) = recover(&dir, 7);
        assert!(replayed > 0, "log should carry the un-checkpointed tail");
        ok(&mut dead, Command::Run(2));
        ok(&mut dead, Command::Run(100));
        assert_eq!(fired(&mut dead), want, "records lost across kill");
    }

    // Meanwhile the live session keeps going degraded; unwedging lets the
    // next sync retry the checkpoint and clear the flag.
    let run = ok(&mut s, Command::Run(2));
    assert!(run.contains("cycles=2"), "{run}");
    fs::remove_dir(&tmp).unwrap();
    ok(&mut s, Command::Run(100));
    assert!(!s.durability_degraded());
    assert!(ok(&mut s, Command::Stats).contains("durability=ok"));
    assert_eq!(fired(&mut s), want);

    // The retried checkpoint truncated the log; disk state alone now
    // reproduces the full session.
    let (mut back, _) = recover(&dir, 7);
    assert_eq!(fired(&mut back), want);

    let _ = fs::remove_dir_all(&dir);
}

/// `attach_durability` failing on a *restored* session must leave the
/// prior incarnation's log untouched — truncating before the new snapshot
/// is durable would strand the old snapshot without its tail.
#[test]
fn failed_attach_preserves_the_existing_log() {
    let dir = tmp_dir("attach");

    let mut s = fresh_session(3);
    // Huge checkpoint_every: everything after attach lives in the log.
    s.attach_durability(&dir, 1_000_000).unwrap();
    seed(&mut s, &[10, 20, 30]);
    ok(&mut s, Command::Run(100));
    let want = fired(&mut s);
    drop(s); // kill

    let log_before = fs::read(Session::log_path(&dir, 3)).unwrap();
    let snap_before = fs::read(Session::snap_path(&dir, 3)).unwrap();
    assert!(!log_before.is_empty());

    // Restart, re-attach with the checkpoint path wedged: must fail and
    // must not have truncated what it failed to re-checkpoint.
    let (mut r, _) = recover(&dir, 3);
    let tmp = block_checkpoint(&dir, 3);
    assert!(r.attach_durability(&dir, 1_000_000).is_err());
    assert_eq!(
        fs::read(Session::log_path(&dir, 3)).unwrap(),
        log_before,
        "failed attach truncated the change log"
    );
    assert_eq!(fs::read(Session::snap_path(&dir, 3)).unwrap(), snap_before);
    // Disk state is still whole: a second recovery sees every record.
    let (mut again, _) = recover(&dir, 3);
    assert_eq!(fired(&mut again), want);

    // Unwedged, the attach completes and folds the log into the snapshot.
    fs::remove_dir(&tmp).unwrap();
    r.attach_durability(&dir, 1_000_000).unwrap();
    assert!(fs::read(Session::log_path(&dir, 3)).unwrap().is_empty());
    let (mut fresh, replayed) = recover(&dir, 3);
    assert_eq!(replayed, 0);
    assert_eq!(fired(&mut fresh), want);

    let _ = fs::remove_dir_all(&dir);
}

/// A crash *between* the tmp write and the rename leaves a stale
/// `.snap.tmp` behind; recovery must ignore it (the real `.snap` +- log is
/// the durable truth) and the next checkpoint must replace it.
#[test]
fn stale_snapshot_tmp_is_ignored_and_replaced() {
    let dir = tmp_dir("stale");

    let mut s = fresh_session(5);
    s.attach_durability(&dir, 1_000_000).unwrap();
    seed(&mut s, &[7, 8]);
    ok(&mut s, Command::Run(100));
    let want = fired(&mut s);
    drop(s);

    // Simulated torn checkpoint: a half-written tmp from a dead process.
    let tmp = Session::snap_path(&dir, 5).with_extension("snap.tmp");
    fs::write(&tmp, b"garbage half-snapshot").unwrap();

    let (mut r, _) = recover(&dir, 5);
    assert_eq!(fired(&mut r), want, "recovery read the torn tmp");

    // The next attach checkpoints right through the stale file.
    r.attach_durability(&dir, 1_000_000).unwrap();
    assert!(!tmp.exists(), "stale tmp should be renamed over");
    let (mut again, _) = recover(&dir, 5);
    assert_eq!(fired(&mut again), want);

    let _ = fs::remove_dir_all(&dir);
}
