//! Differential tests: every match engine must produce the same firing
//! sequence on the same program.
//!
//! The engines differ in memory organisation (vs1 lists, vs2 hash tables),
//! execution style (compiled vs interpreted), and concurrency (sequential vs
//! 1..4 match processes with either lock scheme) — but the recognize-act
//! semantics must be identical. The firing log (production, matched
//! timetags, in firing order) is the strongest observable.

use parallel_ops5::prelude::*;
use workloads::{build_engine, rubik, synth, tourney, weaver, MatcherChoice, Workload};

fn firing_log(w: &Workload, choice: &MatcherChoice) -> Vec<(u32, Vec<u64>)> {
    let mut eng = build_engine(w, choice).expect("build engine");
    eng.run(w.max_cycles).expect("run");
    eng.fired_log()
        .iter()
        .map(|(p, tags)| (p.0, tags.clone()))
        .collect()
}

fn all_choices() -> Vec<MatcherChoice> {
    vec![
        MatcherChoice::Vs1,
        MatcherChoice::Vs2,
        MatcherChoice::Lisp,
        MatcherChoice::Col,
        MatcherChoice::Psm(PsmConfig {
            match_processes: 1,
            queues: 1,
            lock_scheme: LockScheme::Simple,
            buckets: 64,
            scheduler: psm::SchedulerKind::SpinQueues,
        }),
        MatcherChoice::Psm(PsmConfig {
            match_processes: 4,
            queues: 2,
            lock_scheme: LockScheme::Simple,
            buckets: 64,
            scheduler: psm::SchedulerKind::SpinQueues,
        }),
        MatcherChoice::Psm(PsmConfig {
            match_processes: 4,
            queues: 4,
            lock_scheme: LockScheme::Mrsw,
            buckets: 64,
            scheduler: psm::SchedulerKind::SpinQueues,
        }),
    ]
}

fn assert_all_engines_agree(w: Workload) {
    let reference = firing_log(&w, &MatcherChoice::Vs2);
    assert!(!reference.is_empty(), "workload {} did nothing", w.name);
    for choice in all_choices() {
        let log = firing_log(&w, &choice);
        assert_eq!(
            log,
            reference,
            "firing log mismatch: {} under {}",
            w.name,
            choice.label()
        );
    }
}

#[test]
fn rubik_firings_identical_everywhere() {
    assert_all_engines_agree(rubik::workload(rubik::RubikConfig {
        seed: 3,
        scramble_len: 5,
        plan: rubik::PlanMode::Inverse,
    }));
}

#[test]
fn tourney_pathological_firings_identical() {
    assert_all_engines_agree(tourney::workload(tourney::TourneyConfig {
        teams: 6,
        variant: tourney::Variant::Pathological,
    }));
}

#[test]
fn tourney_fixed_firings_identical() {
    assert_all_engines_agree(tourney::workload(tourney::TourneyConfig {
        teams: 6,
        variant: tourney::Variant::Fixed,
    }));
}

#[test]
fn weaver_firings_identical() {
    assert_all_engines_agree(weaver::workload(weaver::WeaverConfig {
        width: 5,
        height: 4,
        kinds: 2,
        nets: 2,
        blocked_pct: 5,
        seed: 17,
    }));
}

#[test]
fn synthetic_cross_product_firings_identical() {
    assert_all_engines_agree(synth::cross_product(5));
}

#[test]
fn synthetic_chain_firings_identical() {
    assert_all_engines_agree(synth::long_chain(30));
}

#[test]
fn synthetic_fat_memories_firings_identical() {
    assert_all_engines_agree(synth::fat_memories(6, 12));
}

/// The `programs/` corpus (the server's session profiles) must also fire
/// identically everywhere. These load their startup forms from source,
/// unlike the generated workloads above.
#[test]
fn corpus_programs_identical_on_all_matchers() {
    for name in ["blocks", "fibonacci", "monkey", "hanoi", "triage"] {
        let src = std::fs::read_to_string(format!("programs/{name}.ops")).expect("read corpus");
        let log = |choice: &MatcherChoice| -> Vec<(u32, Vec<u64>)> {
            let mut eng = EngineBuilder::from_source(&src)
                .expect("parse")
                .matcher(choice.kind())
                .build()
                .expect("build");
            eng.load_startup().expect("startup");
            eng.run(100_000).expect("run");
            eng.fired_log()
                .iter()
                .map(|(p, tags)| (p.0, tags.clone()))
                .collect()
        };
        let reference = log(&MatcherChoice::Vs2);
        assert!(!reference.is_empty(), "{name} did nothing");
        for choice in all_choices() {
            assert_eq!(
                log(&choice),
                reference,
                "firing log mismatch: {name} under {}",
                choice.label()
            );
        }
    }
}

/// Stronger than the firing log: the conflict-set contents after every
/// recognize-act cycle, rendered to bytes, must be identical on all five
/// matchers for every corpus program. Firing order alone could mask a
/// memory-level divergence that conflict resolution happens to hide.
#[test]
fn corpus_cs_history_identical_on_all_matchers() {
    for name in ["blocks", "fibonacci", "monkey", "hanoi", "triage"] {
        let src = std::fs::read_to_string(format!("programs/{name}.ops")).expect("read corpus");
        let history = |choice: &MatcherChoice| -> Vec<u8> {
            let mut eng = EngineBuilder::from_source(&src)
                .expect("parse")
                .matcher(choice.kind())
                .build()
                .expect("build");
            eng.load_startup().expect("startup");
            let mut out = Vec::new();
            loop {
                let r = eng.run(1).expect("run");
                for (prod, tags) in eng.conflict_set().sorted_keys() {
                    out.extend_from_slice(format!("{}:{tags:?};", prod.0).as_bytes());
                }
                out.push(b'\n');
                if r.reason != StopReason::CycleLimit {
                    break;
                }
            }
            out
        };
        let reference = history(&MatcherChoice::Vs2);
        assert!(
            reference.len() > 4,
            "{name} produced no conflict-set history"
        );
        for choice in all_choices() {
            assert_eq!(
                history(&choice),
                reference,
                "CS history mismatch: {name} under {}",
                choice.label()
            );
        }
    }
}

/// Beta-prefix sharing and unlinking are pure optimizations: with both
/// enabled, every matcher must still produce a byte-identical per-cycle
/// conflict-set history on the whole corpus. The reference runs with both
/// off (the paper-faithful network), so any emission the shared DAG or the
/// skip-scan gates add, drop, or reorder shows up here.
#[test]
fn corpus_cs_history_identical_with_sharing_and_unlinking() {
    let tuned = NetworkOptions {
        sharing: true,
        unlinking: true,
    };
    for name in ["blocks", "fibonacci", "monkey", "hanoi", "triage"] {
        let src = std::fs::read_to_string(format!("programs/{name}.ops")).expect("read corpus");
        let history = |choice: &MatcherChoice, options: NetworkOptions| -> Vec<u8> {
            let mut eng = EngineBuilder::from_source(&src)
                .expect("parse")
                .matcher(choice.kind())
                .network_options(options)
                .build()
                .expect("build");
            eng.load_startup().expect("startup");
            let mut out = Vec::new();
            loop {
                let r = eng.run(1).expect("run");
                for (prod, tags) in eng.conflict_set().sorted_keys() {
                    out.extend_from_slice(format!("{}:{tags:?};", prod.0).as_bytes());
                }
                out.push(b'\n');
                if r.reason != StopReason::CycleLimit {
                    break;
                }
            }
            out
        };
        let reference = history(&MatcherChoice::Vs2, NetworkOptions::default());
        assert!(
            reference.len() > 4,
            "{name} produced no conflict-set history"
        );
        for choice in all_choices() {
            assert_eq!(
                history(&choice, tuned),
                reference,
                "CS history diverges with sharing+unlinking: {name} under {}",
                choice.label()
            );
        }
    }
}

/// The parallel matcher must reach every quiescence point with TaskCount at
/// zero and no tokens parked on hash lines — the scheduler-level invariants
/// behind the firing-log equivalence the rest of this suite checks.
#[test]
fn psm_quiescence_points_are_clean() {
    use std::sync::{Arc, Mutex};
    let src = std::fs::read_to_string("programs/monkey.ops").expect("read corpus");
    let probe_slot: Arc<Mutex<Option<psm::PsmProbe>>> = Arc::new(Mutex::new(None));
    let slot = probe_slot.clone();
    let cfg = PsmConfig {
        match_processes: 4,
        queues: 2,
        lock_scheme: LockScheme::Mrsw,
        buckets: 64,
        scheduler: psm::SchedulerKind::SpinQueues,
    };
    let mut eng = EngineBuilder::from_source(&src)
        .expect("parse")
        .custom_matcher(move |net| {
            let m = ParMatcher::new(net, cfg);
            *slot.lock().unwrap() = Some(m.probe());
            Box::new(m)
        })
        .build()
        .expect("build");
    let probe = probe_slot.lock().unwrap().take().expect("probe captured");
    // The act phase submits RHS changes to the matcher immediately, so the
    // state right after `run` is not a quiescence point; `settle` flushes
    // and blocks for one, and the invariants must hold there.
    eng.load_startup().expect("startup");
    eng.settle();
    assert!(probe.quiescent(), "not quiescent after startup settle");
    assert_eq!(probe.parked_tokens(), 0, "tokens parked after startup");
    loop {
        let r = eng.run(1).expect("run");
        eng.settle();
        assert!(probe.quiescent(), "tasks outstanding at quiescence");
        assert_eq!(probe.task_count(), 0, "TaskCount nonzero at quiescence");
        assert_eq!(probe.parked_tokens(), 0, "tokens parked at quiescence");
        if r.reason != StopReason::CycleLimit {
            break;
        }
    }
}

#[test]
fn trace_matcher_agrees_too() {
    let w = rubik::workload(rubik::RubikConfig {
        seed: 9,
        scramble_len: 4,
        plan: rubik::PlanMode::Inverse,
    });
    let reference = firing_log(&w, &MatcherChoice::Vs2);
    let sink = std::sync::Arc::new(std::sync::Mutex::new(psm::trace::RunTrace::default()));
    let log = firing_log(&w, &MatcherChoice::Trace(sink.clone()));
    assert_eq!(log, reference);
    assert!(sink.lock().unwrap().total_tasks() > 100);
}
