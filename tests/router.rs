//! Integration tests for `ops5-router`: sessions sharded across several
//! in-process backends must behave exactly like direct sessions, and a
//! drained backend's sessions must live-migrate without losing state.

use serve::{matcher_kind, Client, Registry, Router, RouterConfig, ServeConfig, Server};
use std::net::SocketAddr;

fn backend() -> serve::ServerHandle {
    let cfg = ServeConfig {
        workers: 2,
        queue_depth: 512,
        programs_dir: Some("programs".into()),
        ..ServeConfig::default()
    };
    Server::bind("127.0.0.1:0", cfg).unwrap().spawn()
}

fn reference_fired(program: &str) -> Vec<String> {
    let reg = Registry::with_builtins(Some("programs".as_ref()));
    let mut eng = reg
        .get(program)
        .unwrap()
        .build(matcher_kind("psm").unwrap(), Default::default())
        .unwrap();
    eng.run(400_000).unwrap();
    eng.fired_log()
        .iter()
        .map(|(p, tags)| {
            let t: Vec<String> = tags.iter().map(|x| x.to_string()).collect();
            format!("{} {}", eng.prog.prod_name(*p), t.join(" "))
        })
        .collect()
}

fn run_to_completion(c: &mut Client) -> Vec<String> {
    for _ in 0..400 {
        let payload = c.run(1000).unwrap().expect_ok().unwrap();
        if !payload.contains("reason=limit") {
            break;
        }
    }
    c.fired().unwrap().expect_lines().unwrap()
}

fn ring_field(lines: &[String], backend: usize, key: &str) -> Option<u64> {
    lines
        .iter()
        .find(|l| l.starts_with(&format!("backend {backend} ")))
        .and_then(|l| {
            l.split_whitespace()
                .find_map(|kv| kv.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        })
        .and_then(|v| v.parse().ok())
}

/// Sessions routed through a 2-backend shard set fire exactly like direct
/// engine runs; `ADMIN SHUTDOWN` stops the router and both backends.
#[test]
fn routed_sessions_match_direct_runs() {
    let b0 = backend();
    let b1 = backend();
    let router = Router::bind("127.0.0.1:0", RouterConfig::new(vec![b0.addr, b1.addr]))
        .unwrap()
        .spawn();
    let addr: SocketAddr = router.addr;

    let threads: Vec<_> = ["blocks", "hanoi", "monkey", "blocks", "hanoi", "monkey"]
        .into_iter()
        .map(|program| {
            std::thread::spawn(move || {
                let reference = reference_fired(program);
                let mut c = Client::connect(addr).unwrap();
                c.open(program, Some("psm")).unwrap().expect_ok().unwrap();
                let fired = run_to_completion(&mut c);
                assert_eq!(fired, reference, "routed {program} diverged");
                c.close().unwrap().expect_ok().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Both backends should have seen at least one pair over the run; the
    // ring spreads distinct connections. (Not guaranteed per-run with 6
    // keys, so only sanity-check the admin surface here.)
    let mut admin = Client::connect(addr).unwrap();
    admin.request("ADMIN").unwrap().expect_ok().unwrap();
    let ring = admin.request("RING?").unwrap().expect_lines().unwrap();
    assert_eq!(ring.len(), 2, "{ring:?}");
    assert!(
        ring[0].contains("live=true") && ring[1].contains("live=true"),
        "{ring:?}"
    );

    admin.request("SHUTDOWN").unwrap().expect_ok().unwrap();
    router.join().unwrap();
    b0.join().unwrap();
    b1.join().unwrap();
}

/// The tentpole property: drain a backend while sessions hold open state
/// on it, and every session finishes with a firing log identical to an
/// uninterrupted direct run — the migration was invisible.
#[test]
fn drain_live_migrates_sessions_without_losing_state() {
    let b0 = backend();
    let b1 = backend();
    let router = Router::bind("127.0.0.1:0", RouterConfig::new(vec![b0.addr, b1.addr]))
        .unwrap()
        .spawn();
    let addr: SocketAddr = router.addr;

    // Open several sessions and run each partway, so the drain has real
    // mid-run state (WM, conflict set, firing log) to carry over.
    let programs = ["blocks", "hanoi", "monkey", "rubik"];
    let mut clients: Vec<(Client, &str)> = Vec::new();
    for program in programs {
        let mut c = Client::connect(addr).unwrap();
        c.open(program, Some("psm")).unwrap().expect_ok().unwrap();
        for _ in 0..2 {
            let payload = c.run(30).unwrap().expect_ok().unwrap();
            if !payload.contains("reason=limit") {
                break;
            }
        }
        clients.push((c, program));
    }

    let mut admin = Client::connect(addr).unwrap();
    admin.request("ADMIN").unwrap().expect_ok().unwrap();
    let before = admin.request("RING?").unwrap().expect_lines().unwrap();
    let on_b0 = ring_field(&before, 0, "pairs").unwrap();

    admin.request("DRAIN 0").unwrap().expect_ok().unwrap();
    // Every session is idle (between requests), so the drain migrates
    // synchronously; RING? must show backend 0 empty and dead.
    let after = admin.request("RING?").unwrap().expect_lines().unwrap();
    assert_eq!(ring_field(&after, 0, "pairs"), Some(0), "{after:?}");
    assert!(after[0].contains("live=false"), "{after:?}");

    let stats = admin.request("STATS?").unwrap().expect_lines().unwrap();
    let migrations: u64 = stats
        .iter()
        .find_map(|l| l.strip_prefix("migrations "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap();
    let failures: u64 = stats
        .iter()
        .find_map(|l| l.strip_prefix("migration_failures "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap();
    assert_eq!(migrations, on_b0, "every pair on backend 0 migrated");
    assert_eq!(failures, 0, "{stats:?}");

    // Resume every session to completion: firing logs must be identical
    // to uninterrupted direct runs, including the pre-drain prefix.
    for (mut c, program) in clients {
        let reference = reference_fired(program);
        let fired = run_to_completion(&mut c);
        assert_eq!(fired, reference, "{program} diverged across migration");
        c.close().unwrap().expect_ok().unwrap();
    }

    admin.request("SHUTDOWN").unwrap().expect_ok().unwrap();
    router.join().unwrap();
    b0.join().unwrap();
    b1.join().unwrap();
}

/// Router guardrails: client `SHUTDOWN` is refused, draining the last
/// live backend is refused, and unknown admin commands error.
#[test]
fn router_guardrails() {
    let b0 = backend();
    let router = Router::bind("127.0.0.1:0", RouterConfig::new(vec![b0.addr]))
        .unwrap()
        .spawn();
    let addr: SocketAddr = router.addr;

    // Ordinary clients cannot take the shared backend down.
    let mut c = Client::connect(addr).unwrap();
    c.open("blocks", Some("vs2")).unwrap().expect_ok().unwrap();
    match c.request("SHUTDOWN").unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("ADMIN"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    // The session is still alive afterwards.
    c.run(0).unwrap().expect_ok().unwrap();
    c.close().unwrap().expect_ok().unwrap();

    let mut admin = Client::connect(addr).unwrap();
    admin.request("ADMIN").unwrap().expect_ok().unwrap();
    match admin.request("DRAIN 0").unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("last live"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    match admin.request("DRAIN 7").unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("no backend"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    match admin.request("FROB").unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("unknown admin"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }

    admin.request("SHUTDOWN").unwrap().expect_ok().unwrap();
    router.join().unwrap();
    b0.join().unwrap();
}
