//! Integration tests for `ops5-router`: sessions sharded across several
//! in-process backends must behave exactly like direct sessions, and a
//! drained backend's sessions must live-migrate without losing state.

use serve::{matcher_kind, Client, Registry, Router, RouterConfig, ServeConfig, Server};
use std::net::SocketAddr;

fn backend() -> serve::ServerHandle {
    let cfg = ServeConfig {
        workers: 2,
        queue_depth: 512,
        programs_dir: Some("programs".into()),
        ..ServeConfig::default()
    };
    Server::bind("127.0.0.1:0", cfg).unwrap().spawn()
}

fn reference_fired(program: &str) -> Vec<String> {
    let reg = Registry::with_builtins(Some("programs".as_ref()));
    let mut eng = reg
        .get(program)
        .unwrap()
        .build(matcher_kind("psm").unwrap(), Default::default(), None)
        .unwrap();
    eng.run(400_000).unwrap();
    eng.fired_log()
        .iter()
        .map(|(p, tags)| {
            let t: Vec<String> = tags.iter().map(|x| x.to_string()).collect();
            format!("{} {}", eng.prog.prod_name(*p), t.join(" "))
        })
        .collect()
}

fn run_to_completion(c: &mut Client) -> Vec<String> {
    for _ in 0..400 {
        let payload = c.run(1000).unwrap().expect_ok().unwrap();
        if !payload.contains("reason=limit") {
            break;
        }
    }
    c.fired().unwrap().expect_lines().unwrap()
}

/// Polls `RING?` until backend `b` has no attached pairs (drain resolved)
/// or a deadline expires; returns the final ring listing either way.
fn wait_for_drain(admin: &mut Client, b: usize) -> Vec<String> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let ring = admin.request("RING?").unwrap().expect_lines().unwrap();
        if ring_field(&ring, b, "pairs") == Some(0) || std::time::Instant::now() > deadline {
            return ring;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

fn ring_field(lines: &[String], backend: usize, key: &str) -> Option<u64> {
    lines
        .iter()
        .find(|l| l.starts_with(&format!("backend {backend} ")))
        .and_then(|l| {
            l.split_whitespace()
                .find_map(|kv| kv.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        })
        .and_then(|v| v.parse().ok())
}

/// Sessions routed through a 2-backend shard set fire exactly like direct
/// engine runs; `ADMIN SHUTDOWN` stops the router and both backends.
#[test]
fn routed_sessions_match_direct_runs() {
    let b0 = backend();
    let b1 = backend();
    let router = Router::bind("127.0.0.1:0", RouterConfig::new(vec![b0.addr, b1.addr]))
        .unwrap()
        .spawn();
    let addr: SocketAddr = router.addr;

    let threads: Vec<_> = ["blocks", "hanoi", "monkey", "blocks", "hanoi", "monkey"]
        .into_iter()
        .map(|program| {
            std::thread::spawn(move || {
                let reference = reference_fired(program);
                let mut c = Client::connect(addr).unwrap();
                c.open(program, Some("psm")).unwrap().expect_ok().unwrap();
                let fired = run_to_completion(&mut c);
                assert_eq!(fired, reference, "routed {program} diverged");
                c.close().unwrap().expect_ok().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Both backends should have seen at least one pair over the run; the
    // ring spreads distinct connections. (Not guaranteed per-run with 6
    // keys, so only sanity-check the admin surface here.)
    let mut admin = Client::connect(addr).unwrap();
    admin.request("ADMIN").unwrap().expect_ok().unwrap();
    let ring = admin.request("RING?").unwrap().expect_lines().unwrap();
    assert_eq!(ring.len(), 2, "{ring:?}");
    assert!(
        ring[0].contains("live=true") && ring[1].contains("live=true"),
        "{ring:?}"
    );

    admin.request("SHUTDOWN").unwrap().expect_ok().unwrap();
    router.join().unwrap();
    b0.join().unwrap();
    b1.join().unwrap();
}

/// The tentpole property: drain a backend while sessions hold open state
/// on it, and every session finishes with a firing log identical to an
/// uninterrupted direct run — the migration was invisible.
#[test]
fn drain_live_migrates_sessions_without_losing_state() {
    let b0 = backend();
    let b1 = backend();
    let router = Router::bind("127.0.0.1:0", RouterConfig::new(vec![b0.addr, b1.addr]))
        .unwrap()
        .spawn();
    let addr: SocketAddr = router.addr;

    // Open several sessions and run each partway, so the drain has real
    // mid-run state (WM, conflict set, firing log) to carry over.
    let programs = ["blocks", "hanoi", "monkey", "rubik"];
    let mut clients: Vec<(Client, &str)> = Vec::new();
    for program in programs {
        let mut c = Client::connect(addr).unwrap();
        c.open(program, Some("psm")).unwrap().expect_ok().unwrap();
        for _ in 0..2 {
            let payload = c.run(30).unwrap().expect_ok().unwrap();
            if !payload.contains("reason=limit") {
                break;
            }
        }
        clients.push((c, program));
    }

    let mut admin = Client::connect(addr).unwrap();
    admin.request("ADMIN").unwrap().expect_ok().unwrap();
    let before = admin.request("RING?").unwrap().expect_lines().unwrap();
    let on_b0 = ring_field(&before, 0, "pairs").unwrap();

    admin.request("DRAIN 0").unwrap().expect_ok().unwrap();
    // Migrations run off the reactor on helper threads, so the drain is
    // asynchronous: poll RING? until backend 0 reports no attached pairs
    // (mid-transit pairs still count against it until they land).
    let after = wait_for_drain(&mut admin, 0);
    assert_eq!(ring_field(&after, 0, "pairs"), Some(0), "{after:?}");
    assert!(after[0].contains("live=false"), "{after:?}");

    let stats = admin.request("STATS?").unwrap().expect_lines().unwrap();
    let migrations: u64 = stats
        .iter()
        .find_map(|l| l.strip_prefix("migrations "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap();
    let failures: u64 = stats
        .iter()
        .find_map(|l| l.strip_prefix("migration_failures "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap();
    assert_eq!(migrations, on_b0, "every pair on backend 0 migrated");
    assert_eq!(failures, 0, "{stats:?}");

    // Resume every session to completion: firing logs must be identical
    // to uninterrupted direct runs, including the pre-drain prefix.
    for (mut c, program) in clients {
        let reference = reference_fired(program);
        let fired = run_to_completion(&mut c);
        assert_eq!(fired, reference, "{program} diverged across migration");
        c.close().unwrap().expect_ok().unwrap();
    }

    admin.request("SHUTDOWN").unwrap().expect_ok().unwrap();
    router.join().unwrap();
    b0.join().unwrap();
    b1.join().unwrap();
}

/// Router guardrails: client `SHUTDOWN` is refused, draining the last
/// live backend is refused, and unknown admin commands error.
#[test]
fn router_guardrails() {
    let b0 = backend();
    let router = Router::bind("127.0.0.1:0", RouterConfig::new(vec![b0.addr]))
        .unwrap()
        .spawn();
    let addr: SocketAddr = router.addr;

    // Ordinary clients cannot take the shared backend down.
    let mut c = Client::connect(addr).unwrap();
    c.open("blocks", Some("vs2")).unwrap().expect_ok().unwrap();
    match c.request("SHUTDOWN").unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("ADMIN"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    // The session is still alive afterwards.
    c.run(0).unwrap().expect_ok().unwrap();
    c.close().unwrap().expect_ok().unwrap();

    let mut admin = Client::connect(addr).unwrap();
    admin.request("ADMIN").unwrap().expect_ok().unwrap();
    match admin.request("DRAIN 0").unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("last live"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    match admin.request("DRAIN 7").unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("no backend"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    match admin.request("FROB").unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("unknown admin"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }

    admin.request("SHUTDOWN").unwrap().expect_ok().unwrap();
    router.join().unwrap();
    b0.join().unwrap();
}

/// Regression: a `DRAIN` that lands while a pair is inside a multi-line
/// command (here: an open `BATCH` body) must let the command finish —
/// the router keeps forwarding body lines (and the terminator) so the
/// backend can reply, and only then migrates at the safe point. The old
/// behavior held *all* input once the drain was pending, so the `END`
/// never reached the backend and the connection hung forever.
#[test]
fn drain_mid_batch_completes_then_migrates() {
    let b0 = backend();
    let b1 = backend();
    let router = Router::bind("127.0.0.1:0", RouterConfig::new(vec![b0.addr, b1.addr]))
        .unwrap()
        .spawn();
    let addr: SocketAddr = router.addr;

    let mut c = Client::connect(addr).unwrap();
    c.open("blocks", Some("psm")).unwrap().expect_ok().unwrap();
    c.run(30).unwrap().expect_ok().unwrap();

    // Open a BATCH but do not terminate it yet, then give the router a
    // moment to route the line so the pair is genuinely mid-body.
    c.send_line("BATCH").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(300));

    let mut admin = Client::connect(addr).unwrap();
    admin.request("ADMIN").unwrap().expect_ok().unwrap();
    let ring = admin.request("RING?").unwrap().expect_lines().unwrap();
    let on = if ring_field(&ring, 0, "pairs") == Some(1) {
        0
    } else {
        1
    };
    admin
        .request(&format!("DRAIN {on}"))
        .unwrap()
        .expect_ok()
        .unwrap();

    // The batch must still complete: its terminator flows through and the
    // backend's reply comes back before the session moves.
    c.send_line("END").unwrap();
    c.read_reply().unwrap().expect_ok().unwrap();

    let after = wait_for_drain(&mut admin, on);
    assert_eq!(ring_field(&after, on, "pairs"), Some(0), "{after:?}");
    let stats = admin.request("STATS?").unwrap().expect_lines().unwrap();
    let failures: u64 = stats
        .iter()
        .find_map(|l| l.strip_prefix("migration_failures "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap();
    assert_eq!(failures, 0, "{stats:?}");

    // The migrated session runs to the same firing log as a direct run.
    let reference = reference_fired("blocks");
    let fired = run_to_completion(&mut c);
    assert_eq!(fired, reference, "blocks diverged across mid-batch drain");
    c.close().unwrap().expect_ok().unwrap();

    admin.request("SHUTDOWN").unwrap().expect_ok().unwrap();
    router.join().unwrap();
    b0.join().unwrap();
    b1.join().unwrap();
}

/// Regression: a pipelining client that half-closes its write side must
/// still receive every reply it is owed, exactly as on a direct
/// connection. The old router treated client EOF as connection death and
/// discarded queued and in-flight replies.
#[test]
fn half_closed_client_still_receives_pipelined_replies() {
    use std::io::{BufRead, BufReader, Write};

    let b0 = backend();
    let router = Router::bind("127.0.0.1:0", RouterConfig::new(vec![b0.addr]))
        .unwrap()
        .spawn();

    let s = std::net::TcpStream::connect(router.addr).unwrap();
    s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let mut w = s.try_clone().unwrap();
    w.write_all(b"OPEN blocks psm\nRUN 0\nSTATS?\nFIRED?\nCLOSE\n")
        .unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();

    let mut lines: Vec<String> = Vec::new();
    let mut r = BufReader::new(s);
    loop {
        let mut line = String::new();
        match r.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => lines.push(line.trim_end().to_string()),
            Err(e) => panic!("reply stream died early after {lines:?}: {e}"),
        }
    }
    // Replies, in order: OPEN, RUN, STATS? (all OK), the FIRED?
    // multi-line block, and the CLOSE acknowledgement.
    let oks = lines.iter().filter(|l| l.starts_with("OK ")).count();
    assert_eq!(oks, 4, "expected 4 OK replies, got {lines:?}");
    assert!(
        lines.iter().any(|l| l.starts_with("FIRED ")),
        "missing FIRED? reply: {lines:?}"
    );
    assert!(
        lines
            .last()
            .map(|l| l.starts_with("OK closed"))
            .unwrap_or(false),
        "CLOSE reply must be last: {lines:?}"
    );

    let mut admin = Client::connect(router.addr).unwrap();
    admin.request("ADMIN").unwrap().expect_ok().unwrap();
    admin.request("SHUTDOWN").unwrap().expect_ok().unwrap();
    router.join().unwrap();
    b0.join().unwrap();
}
