//! Property-based tests for the durability subsystem (`engine::state`).
//!
//! Strategy: generate small random programs whose productions actually fire
//! (`(remove 1)` RHS, so firings consume matches and every run terminates),
//! plus random command sequences of staged asserts, staged retracts, and
//! bounded runs. Two properties must hold on every matcher:
//!
//! * **Snapshot transparency** — cutting the sequence at any point,
//!   serializing the engine through snapshot *text*, restoring into a fresh
//!   engine (on the same or a *different* matcher), and continuing produces
//!   the byte-identical observation trace (per-run cycle counts, stop
//!   reasons, sorted conflict sets) and identical final state as the
//!   uninterrupted engine.
//! * **Journal replay** — an initial snapshot plus the change/firing log
//!   journaled during the run reconstructs the final state exactly.

use engine::{Engine, EngineBuilder, MatcherKind, Snapshot};
use ops5::{wire, Value};
use proptest::prelude::*;

/// A random condition element over classes c0..c2, fields f0..f2.
#[derive(Debug, Clone)]
struct GenCe {
    class: u8,
    negated: bool,
    tests: Vec<(u8, GenTest)>,
}

#[derive(Debug, Clone)]
enum GenTest {
    Const(u8),
    Var(u8),
    VarNe(u8),
}

fn gen_test() -> impl Strategy<Value = GenTest> {
    prop_oneof![
        (0u8..4).prop_map(GenTest::Const),
        (0u8..3).prop_map(GenTest::Var),
        (0u8..3).prop_map(GenTest::VarNe),
    ]
}

fn gen_ce() -> impl Strategy<Value = GenCe> {
    (
        0u8..3,
        proptest::collection::vec((0u8..3, gen_test()), 0..3),
    )
        .prop_map(|(class, tests)| GenCe {
            class,
            negated: false,
            tests,
        })
}

#[derive(Debug, Clone)]
struct GenProgram {
    prods: Vec<Vec<GenCe>>,
}

fn gen_program() -> impl Strategy<Value = GenProgram> {
    proptest::collection::vec(
        (
            gen_ce(),
            proptest::collection::vec((gen_ce(), any::<bool>()), 0..2),
        ),
        1..4,
    )
    .prop_map(|prods| GenProgram {
        prods: prods
            .into_iter()
            .map(|(first, rest)| {
                let mut lhs = vec![first];
                for (mut ce, neg) in rest {
                    ce.negated = neg;
                    lhs.push(ce);
                }
                lhs
            })
            .collect(),
    })
}

/// Renders the generated program as OPS5 source. Every production's first
/// CE binds all three variables (so predicate tests are always legal) and
/// its RHS removes that CE's WME — firings consume their own support, so
/// runs terminate and the firing log stays interesting.
fn render(prog: &GenProgram) -> String {
    let mut s = String::new();
    for c in 0..3 {
        s.push_str(&format!("(literalize c{c} f0 f1 f2)\n"));
    }
    for (pi, lhs) in prog.prods.iter().enumerate() {
        s.push_str(&format!("(p p{pi}\n"));
        for (ci, ce) in lhs.iter().enumerate() {
            if ce.negated && ci > 0 {
                s.push_str("  - ");
            } else {
                s.push_str("  ");
            }
            s.push_str(&format!("(c{}", ce.class));
            if ci == 0 {
                s.push_str(" ^f0 <v0> ^f1 <v1> ^f2 <v2>");
            }
            for (field, t) in &ce.tests {
                match t {
                    GenTest::Const(v) => s.push_str(&format!(" ^f{field} {v}")),
                    GenTest::Var(v) => s.push_str(&format!(" ^f{field} <v{v}>")),
                    GenTest::VarNe(v) => s.push_str(&format!(" ^f{field} <> <v{v}>")),
                }
            }
            s.push_str(")\n");
        }
        s.push_str("  --> (remove 1))\n");
    }
    s
}

/// A random session command: staged assert, staged retract (of some
/// previously issued timetag), or a bounded run.
#[derive(Debug, Clone)]
enum Cmd {
    Stage(u8, [u8; 3]),
    Retract(usize),
    Run(u8),
}

fn gen_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..3, [0u8..4, 0u8..4, 0u8..4]).prop_map(|(c, f)| Cmd::Stage(c, f)),
            (0u8..3, [0u8..4, 0u8..4, 0u8..4]).prop_map(|(c, f)| Cmd::Stage(c, f)),
            (0usize..64).prop_map(Cmd::Retract),
            (1u8..4).prop_map(Cmd::Run),
        ],
        1..20,
    )
}

fn kinds() -> Vec<(&'static str, MatcherKind)> {
    vec![
        ("vs1", MatcherKind::Vs1),
        ("vs2", MatcherKind::Vs2(rete::HashMemConfig::default())),
        ("lisp", MatcherKind::Lisp),
        (
            "psm",
            MatcherKind::Psm(psm::PsmConfig {
                match_processes: 1,
                ..psm::PsmConfig::default()
            }),
        ),
        ("col", MatcherKind::Col),
    ]
}

fn build(src: &str, kind: &MatcherKind) -> Engine {
    EngineBuilder::from_source(src)
        .expect("generated source parses")
        .matcher(kind.clone())
        .build()
        .expect("engine builds")
}

/// Applies a command slice, appending one observation line per command.
/// `tags` carries the staged-timetag pool across a snapshot cut, so the
/// continued engine retracts exactly what the uninterrupted one would.
fn apply(eng: &mut Engine, cmds: &[Cmd], tags: &mut Vec<u64>, trace: &mut Vec<String>) {
    for cmd in cmds {
        match cmd {
            Cmd::Stage(c, f) => {
                let class = eng
                    .prog
                    .symbols
                    .get(&format!("c{c}"))
                    .expect("class interned");
                let fields: Vec<Value> = f.iter().map(|x| Value::Int(i64::from(*x))).collect();
                let w = eng.stage(class, fields).expect("stage");
                tags.push(w.timetag);
                trace.push(format!("stage {}", w.timetag));
            }
            Cmd::Retract(i) => {
                if tags.is_empty() {
                    trace.push("retract none".into());
                    continue;
                }
                let t = tags[i % tags.len()];
                let ok = eng.stage_retract(t).is_ok();
                trace.push(format!("retract {t} {ok}"));
            }
            Cmd::Run(k) => {
                let res = eng.run(u64::from(*k)).expect("run");
                eng.settle();
                let cs: Vec<String> = eng
                    .conflict_set()
                    .sorted_keys()
                    .iter()
                    .map(|(p, tags)| format!("{}:{tags:?}", eng.prog.prod_name(*p)))
                    .collect();
                trace.push(format!("run {} {:?} cs={cs:?}", res.cycles, res.reason));
            }
        }
    }
}

/// Everything observable about an engine's final state, as one string.
fn state_sig(eng: &Engine) -> String {
    let prog = &eng.prog;
    let mut wm: Vec<String> = eng
        .wm()
        .iter()
        .map(|w| {
            format!(
                "{} {}",
                w.timetag,
                wire::print_wme(w, &prog.symbols, &prog.classes)
            )
        })
        .collect();
    wm.sort();
    let fired: Vec<String> = eng
        .fired_log()
        .iter()
        .map(|(p, tags)| format!("{}:{tags:?}", prog.prod_name(*p)))
        .collect();
    let cs: Vec<String> = eng
        .conflict_set()
        .sorted_keys()
        .iter()
        .map(|(p, tags)| format!("{}:{tags:?}", prog.prod_name(*p)))
        .collect();
    format!(
        "cycles={} clock={} staged={} wm={wm:?} cs={cs:?} fired={fired:?}",
        eng.cycles(),
        eng.wm().clock(),
        eng.staged_len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// snapshot → text → parse → restore → continue ≡ uninterrupted, with
    /// the restore landing on the *next* matcher in the rotation — so every
    /// matcher is exercised both as snapshot source and as restore target.
    #[test]
    fn snapshot_cut_is_invisible(
        genp in gen_program(),
        cmds in gen_cmds(),
        cut_seed in 0usize..64,
    ) {
        let src = render(&genp);
        let kinds = kinds();
        let cut = cut_seed % (cmds.len() + 1);
        for (i, (_, kind)) in kinds.iter().enumerate() {
            // Uninterrupted reference.
            let mut a = build(&src, kind);
            let mut tags_a = Vec::new();
            let mut trace_a = Vec::new();
            apply(&mut a, &cmds, &mut tags_a, &mut trace_a);

            // Same prefix, snapshot at the cut, restore onto the next
            // matcher kind, continue with the suffix.
            let (_, kind_c) = &kinds[(i + 1) % kinds.len()];
            let mut b = build(&src, kind);
            let mut tags_bc = Vec::new();
            let mut trace_bc = Vec::new();
            apply(&mut b, &cmds[..cut], &mut tags_bc, &mut trace_bc);
            let text = b.snapshot().to_text();
            let snap = Snapshot::parse(&text).expect("snapshot text parses");
            let mut c = build(&src, kind_c);
            c.restore(&snap).expect("restore");
            apply(&mut c, &cmds[cut..], &mut tags_bc, &mut trace_bc);

            prop_assert_eq!(&trace_a, &trace_bc, "trace diverged (cut {})", cut);
            prop_assert_eq!(state_sig(&a), state_sig(&c), "final state diverged (cut {})", cut);
        }
    }

    /// An initial snapshot plus the journaled change/firing log replays to
    /// the exact final state, on every matcher.
    #[test]
    fn journal_replay_reconstructs_state(genp in gen_program(), cmds in gen_cmds()) {
        let src = render(&genp);
        for (_, kind) in kinds() {
            let mut j = build(&src, &kind);
            let snap0 = Snapshot::parse(&j.snapshot().to_text()).expect("snapshot parses");
            j.enable_journal();
            let mut tags = Vec::new();
            let mut trace = Vec::new();
            apply(&mut j, &cmds, &mut tags, &mut trace);
            let log_text = j.journal().expect("journal on").to_text();

            let mut k = build(&src, &kind);
            k.restore(&snap0).expect("restore initial snapshot");
            let log = engine::ChangeLog::parse(&log_text).expect("log parses");
            log.replay(&mut k).expect("replay");
            // Replayed firings leave the matcher un-quiesced right after the
            // last fire; settle both sides so the comparison sees the same
            // fold point.
            j.settle();
            k.settle();
            prop_assert_eq!(state_sig(&j), state_sig(&k));
        }
    }
}
