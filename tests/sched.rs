//! Integration tests for priority scheduling, deadline preemption (RUN
//! slicing), and cooperative cancellation: a preempted, sliced, or
//! cancelled-then-resumed run must stay observably identical to a serial
//! direct engine run — same reply bytes, same firing log.

use parallel_ops5::prelude::*;
use serve::{matcher_kind, ClientReply, Registry, ServeConfig, Server};

fn fired_lines(eng: &Engine) -> Vec<String> {
    eng.fired_log()
        .iter()
        .map(|(p, tags)| {
            let t: Vec<String> = tags.iter().map(|x| x.to_string()).collect();
            format!("{} {}", eng.prog.prod_name(*p), t.join(" "))
        })
        .collect()
}

const SPIN: &str = "(literalize c n)
                    (p spin (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))";

/// Drives one corpus program to completion in fixed RUN chunks and returns
/// (reply payloads, FIRED? lines) — the full observable trace.
fn drive(addr: std::net::SocketAddr, program: &str, prio: &str) -> (Vec<String>, Vec<String>) {
    let mut c = serve::Client::connect(addr).unwrap();
    c.open_prio(program, Some("psm"), prio)
        .unwrap()
        .expect_ok()
        .unwrap();
    let mut replies = Vec::new();
    for _ in 0..400 {
        let payload = c.run(900).unwrap().expect_ok().unwrap();
        let done = !payload.contains("reason=limit");
        replies.push(payload);
        if done {
            break;
        }
    }
    let fired = c.fired().unwrap().expect_lines().unwrap();
    c.close().unwrap().expect_ok().unwrap();
    (replies, fired)
}

/// A sliced server (every RUN preempted into 37-cycle sub-runs, an odd
/// size so slice boundaries never align with chunk boundaries) must be
/// byte-identical to an unsliced server on every reply, and both must
/// match the direct engine's firing log — at every priority level.
#[test]
fn sliced_runs_are_byte_identical_to_unsliced_and_direct() {
    let sliced = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            run_slice_cycles: 37,
            programs_dir: Some("programs".into()),
            ..ServeConfig::default()
        },
    )
    .unwrap()
    .spawn();
    let plain = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            run_slice_cycles: 0,
            programs_dir: Some("programs".into()),
            ..ServeConfig::default()
        },
    )
    .unwrap()
    .spawn();

    let reg = Registry::with_builtins(Some("programs".as_ref()));
    for (program, prio) in [
        ("blocks", "high"),
        ("fibonacci", "normal"),
        ("monkey", "batch"),
        ("hanoi", "high"),
    ] {
        let mut eng = reg
            .get(program)
            .unwrap()
            .build(matcher_kind("psm").unwrap(), Default::default(), None)
            .unwrap();
        eng.run(400_000).unwrap();
        let reference = fired_lines(&eng);

        let (replies_s, fired_s) = drive(sliced.addr, program, prio);
        let (replies_p, fired_p) = drive(plain.addr, program, prio);
        assert_eq!(replies_s, replies_p, "{program} reply divergence");
        assert_eq!(fired_s, reference, "{program} sliced firing divergence");
        assert_eq!(fired_p, reference, "{program} unsliced firing divergence");
    }

    for h in [sliced, plain] {
        let mut c = serve::Client::connect(h.addr).unwrap();
        c.shutdown().unwrap().expect_ok().unwrap();
        h.join().unwrap();
    }
}

/// With one worker and slicing on, a long batch RUN cannot monopolize the
/// pool: a high-priority session opened mid-run gets served between its
/// slices, and the preemption counter proves the long run actually yielded.
#[test]
fn preemption_lets_high_priority_through_a_wedged_worker() {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 64,
        max_cycles_per_run: 2_000_000,
        run_slice_cycles: 500,
        obs: ObsConfig::enabled(),
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();

    // The wedge: a batch-class spinner holding a 2M-cycle sliced RUN.
    let mut a = serve::Client::connect(handle.addr).unwrap();
    a.send_line("OPEN - vs2 PRIO=batch").unwrap();
    for l in SPIN.lines() {
        a.send_line(l).unwrap();
    }
    a.send_line("END").unwrap();
    a.read_reply().unwrap().expect_ok().unwrap();
    a.assert_wme("c ^n 0").unwrap().unwrap();
    a.send_line("RUN 2000000").unwrap();

    // The only worker is busy with the spinner; a high session must still
    // complete a full lifecycle while that RUN is in flight.
    let mut b = serve::Client::connect(handle.addr).unwrap();
    b.open_source(
        "(literalize x v)\n(p r (x ^v <v>) --> (remove 1))",
        Some("vs2"),
    )
    .unwrap()
    .expect_ok()
    .unwrap();
    b.prio("high").unwrap().expect_ok().unwrap();
    b.assert_wme("x ^v 1").unwrap().unwrap();
    let run = b.run(10).unwrap().expect_ok().unwrap();
    assert!(run.contains("cycles=1"), "{run}");

    // The spinner is still running (cancel it to unwedge), so b's whole
    // lifecycle above was interleaved between its slices.
    a.send_line("CANCEL").unwrap();
    assert!(
        matches!(a.read_reply().unwrap(), ClientReply::Err(_)),
        "the wedged RUN should be cut by CANCEL"
    );
    a.read_reply().unwrap().expect_ok().unwrap(); // CANCEL's own reply

    let metrics = b.metrics().unwrap().expect_lines().unwrap();
    let preempted: u64 = metrics
        .iter()
        .find_map(|l| l.strip_prefix("serve_preemptions_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0);
    assert!(preempted > 0, "no preemptions recorded: {metrics:?}");

    b.shutdown().unwrap().expect_ok().unwrap();
    handle.join().unwrap();
}

/// CANCEL fast-fails queued commands, cuts the in-flight sliced RUN at a
/// slice boundary, and leaves the session fully resumable.
#[test]
fn cancel_cuts_run_and_session_stays_usable() {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 64,
        max_cycles_per_run: 2_000_000,
        run_slice_cycles: 200,
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
    let mut c = serve::Client::connect(handle.addr).unwrap();
    c.open_source(SPIN, Some("vs2"))
        .unwrap()
        .expect_ok()
        .unwrap();
    c.assert_wme("c ^n 0").unwrap().unwrap();

    // Pipeline: a 2M-cycle RUN, a queued ASSERT behind it, then CANCEL.
    c.send_line("RUN 2000000").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    c.send_line("ASSERT c ^n 99").unwrap();
    c.send_line("CANCEL").unwrap();

    // In order: the RUN is cut mid-flight, the queued ASSERT fast-fails,
    // and CANCEL reports what it flushed.
    let run = c.read_reply().unwrap();
    assert!(
        matches!(&run, ClientReply::Err(e) if e == "cancelled"),
        "{run:?}"
    );
    let asrt = c.read_reply().unwrap();
    assert!(
        matches!(&asrt, ClientReply::Err(e) if e == "cancelled"),
        "{asrt:?}"
    );
    let cancelled = c.read_reply().unwrap().expect_ok().unwrap();
    assert!(cancelled.starts_with("cancelled pending="), "{cancelled}");

    // Resumable: the engine kept its partial progress and accepts work.
    let stats = c.stats().unwrap().expect_ok().unwrap();
    assert!(stats.contains("cycles="), "{stats}");
    let run = c.run(10).unwrap().expect_ok().unwrap();
    assert!(run.contains("cycles=10"), "{run}");

    c.shutdown().unwrap().expect_ok().unwrap();
    handle.join().unwrap();
}

/// A RUN clamped by server policy says so: `reason=limit` alone is the
/// engine's own cycle limit, `clamped=<requested>` marks the server's
/// `max_cycles_per_run` cutting the request short.
#[test]
fn clamped_runs_carry_the_requested_count() {
    let cfg = ServeConfig {
        workers: 1,
        max_cycles_per_run: 100,
        run_slice_cycles: 0,
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
    let mut c = serve::Client::connect(handle.addr).unwrap();
    c.open_source(SPIN, Some("vs2"))
        .unwrap()
        .expect_ok()
        .unwrap();
    c.assert_wme("c ^n 0").unwrap().unwrap();

    let run = c.run(500).unwrap().expect_ok().unwrap();
    assert!(run.contains("reason=limit"), "{run}");
    assert!(run.contains("clamped=500"), "{run}");

    // Exactly at the cap, and below it: the engine's own limit, no note.
    for n in [100, 50] {
        let run = c.run(n).unwrap().expect_ok().unwrap();
        assert!(run.contains("reason=limit"), "{run}");
        assert!(!run.contains("clamped="), "{run}");
    }

    c.shutdown().unwrap().expect_ok().unwrap();
    handle.join().unwrap();
}

/// OPEN echoes an explicit PRIO= class, PRIO reclassifies a live session,
/// and malformed classes are rejected without disturbing the session.
#[test]
fn prio_protocol_roundtrip() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            programs_dir: Some("programs".into()),
            ..ServeConfig::default()
        },
    )
    .unwrap()
    .spawn();
    let mut c = serve::Client::connect(handle.addr).unwrap();
    let ok = c
        .open_prio("blocks", Some("vs2"), "batch")
        .unwrap()
        .expect_ok()
        .unwrap();
    assert!(ok.contains("prio=batch"), "{ok}");
    assert_eq!(c.prio("HIGH").unwrap().expect_ok().unwrap(), "prio=high");
    assert!(matches!(c.prio("frob").unwrap(), ClientReply::Err(_)));
    // The session survived the bad class and still executes.
    c.run(0).unwrap().expect_ok().unwrap();
    c.close().unwrap().expect_ok().unwrap();

    // An unknown PRIO= on OPEN fails before a session is created.
    let err = c.request("OPEN blocks PRIO=frob").unwrap();
    assert!(
        matches!(&err, ClientReply::Err(e) if e.contains("unknown priority")),
        "{err:?}"
    );
    c.open("blocks", None).unwrap().expect_ok().unwrap();
    c.close().unwrap().expect_ok().unwrap();

    c.shutdown().unwrap().expect_ok().unwrap();
    handle.join().unwrap();
}
