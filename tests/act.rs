//! Differential tests for the parallel act phase.
//!
//! `ActStrategy::Parallel` is serial-equivalent *by construction* (prefix
//! selection in dominance order, fertile firings close their group, doomed
//! candidates skipped only when a selected member retracts their support).
//! This suite checks the construction: on the corpus, on hand-written
//! interference shapes, and on random programs × random scripts, a
//! parallel-act engine must be byte-identical to a serial one — firing
//! log, working memory, `write` output, stop reason, and the full snapshot
//! text — on all five matchers.

use engine::EngineLimits;
use parallel_ops5::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Just;

fn five_matchers() -> Vec<MatcherKind> {
    vec![
        MatcherKind::Vs1,
        MatcherKind::Vs2(rete::HashMemConfig::default()),
        MatcherKind::Lisp,
        MatcherKind::Col,
        MatcherKind::Psm(PsmConfig {
            match_processes: 2,
            ..PsmConfig::default()
        }),
    ]
}

/// Everything observable about a finished run, as comparable bytes.
struct Observed {
    snapshot: String,
    output: Vec<String>,
    cycles: u64,
    reason: StopReason,
    stats: ActStats,
}

fn observe(
    src: &str,
    kind: MatcherKind,
    act: ActStrategy,
    max_cycles: u64,
) -> Result<Observed, String> {
    let mut eng = EngineBuilder::from_source(src)
        .map_err(|e| e.to_string())?
        .matcher(kind)
        .act_strategy(act)
        .build()
        .map_err(|e| e.to_string())?;
    eng.load_startup().map_err(|e| e.to_string())?;
    let r = eng.run(max_cycles).map_err(|e| e.to_string())?;
    Ok(Observed {
        snapshot: eng.snapshot().to_text(),
        output: eng.output().to_vec(),
        cycles: r.cycles,
        reason: r.reason,
        stats: eng.act_stats(),
    })
}

fn assert_equivalent(src: &str, kind: MatcherKind, max_cycles: u64, label: &str) -> ActStats {
    let serial = observe(src, kind.clone(), ActStrategy::Serial, max_cycles);
    let parallel = observe(src, kind, ActStrategy::parallel(), max_cycles);
    match (serial, parallel) {
        (Ok(s), Ok(p)) => {
            assert_eq!(p.snapshot, s.snapshot, "{label}: snapshot diverged");
            assert_eq!(p.output, s.output, "{label}: output diverged");
            assert_eq!(p.cycles, s.cycles, "{label}: cycle count diverged");
            assert_eq!(p.reason, s.reason, "{label}: stop reason diverged");
            assert_eq!(p.stats.fired, s.stats.fired, "{label}: firings diverged");
            p.stats
        }
        // Runtime errors (e.g. a generated RHS removing the same WME
        // twice) must surface identically under both strategies.
        (Err(se), Err(pe)) => {
            assert_eq!(pe, se, "{label}: errors diverged");
            ActStats::default()
        }
        (s, p) => panic!(
            "{label}: one strategy errored: serial={:?} parallel={:?}",
            s.as_ref().map(|_| "ok").map_err(|e| e.clone()),
            p.as_ref().map(|_| "ok").map_err(|e| e.clone())
        ),
    }
}

/// The programs/ corpus, serial vs parallel, on all five matchers: the
/// snapshot (working memory, fired conflict set, firing log, output) must
/// be byte-identical.
#[test]
fn corpus_parallel_act_equals_serial_on_all_matchers() {
    for name in ["blocks", "fibonacci", "monkey", "hanoi", "triage"] {
        let src = std::fs::read_to_string(format!("programs/{name}.ops")).expect("read corpus");
        for kind in five_matchers() {
            let label = format!("{name}/{}", kind.name());
            assert_equivalent(&src, kind, 100_000, &label);
        }
    }
}

/// Triage is the grouping showcase: remove-only route rules are infertile
/// and pairwise independent, so groups actually form — and each group
/// costs one match pass and one submit where serial pays one per firing.
#[test]
fn triage_groups_and_cuts_match_passes() {
    let src = std::fs::read_to_string("programs/triage.ops").expect("read corpus");
    let serial = observe(&src, MatcherKind::default(), ActStrategy::Serial, 100_000).unwrap();
    let parallel = observe(
        &src,
        MatcherKind::default(),
        ActStrategy::parallel(),
        100_000,
    )
    .unwrap();
    let (s, p) = (serial.stats, parallel.stats);
    assert_eq!(p.fired, s.fired);
    assert!(p.mean_group_size() > 1.5, "triage should group: {:?}", p);
    assert!(
        p.match_passes < s.match_passes,
        "grouping must cut match passes: parallel {} vs serial {}",
        p.match_passes,
        s.match_passes
    );
    assert!(
        p.act_submits < s.act_submits,
        "grouping must cut submits: parallel {} vs serial {}",
        p.act_submits,
        s.act_submits
    );
}

/// Hand-written interference: `kill` retracts the WME `keep` matched, and
/// `keep` dominates (longer timetag list, equal prefix). They must NOT
/// group — firing them together would let `kill` destroy `keep`'s support
/// in the same batch — but both still fire, serially, in two groups.
#[test]
fn retract_of_selected_support_does_not_group() {
    let src = "(literalize a v)(literalize b v)\n\
               (p keep (a ^v <v>) (b ^v <v>) --> (write keep <v> (crlf)))\n\
               (p kill (b ^v <v>) --> (remove 1) (write kill <v> (crlf)))\n\
               (make a ^v 7)\n\
               (make b ^v 7)";
    for kind in five_matchers() {
        let label = format!("interference/{}", kind.name());
        let stats = assert_equivalent(src, kind, 1_000, &label);
        assert_eq!(stats.fired, 2, "{label}: both productions fire");
        assert_eq!(stats.groups, 2, "{label}: but never in one group");
        assert!(
            stats.interference_rejects >= 1,
            "{label}: the rejected extension is counted: {stats:?}"
        );
    }
}

/// Doomed skip: two instantiations share the token WME and both would
/// retract it. In a serial run the second dies when the first fires; in a
/// parallel run it is skipped during selection (not fired, not a group
/// stopper) and the walk continues past it.
#[test]
fn doomed_candidate_is_skipped_not_fired() {
    let src = "(literalize item v)(literalize token id)\n\
               (p grab (item ^v <v>) (token ^id <t>) --> (remove 2) (write got <v> (crlf)))\n\
               (make token ^id 1)\n\
               (make item ^v 1)\n\
               (make item ^v 2)";
    for kind in five_matchers() {
        let label = format!("doomed/{}", kind.name());
        let stats = assert_equivalent(src, kind, 1_000, &label);
        assert_eq!(stats.fired, 1, "{label}: only one grab gets the token");
        assert!(
            stats.doomed_skips >= 1,
            "{label}: the doomed rival is skipped: {stats:?}"
        );
    }
}

/// A `run` cap must land on the same cycle and reason under both
/// strategies: a k-firing group counts k cycles, and a cap below the
/// natural group size shrinks the group rather than overshooting.
#[test]
fn cycle_caps_and_budget_count_group_members() {
    let src = std::fs::read_to_string("programs/triage.ops").expect("read corpus");
    // Caller cap (CycleLimit), including caps that bisect a group.
    for cap in [1u64, 3, 5, 8, 17] {
        let mut serial = EngineBuilder::from_source(&src).unwrap().build().unwrap();
        let mut parallel = EngineBuilder::from_source(&src)
            .unwrap()
            .act_strategy(ActStrategy::parallel())
            .build()
            .unwrap();
        for eng in [&mut serial, &mut parallel] {
            eng.load_startup().unwrap();
        }
        let rs = serial.run(cap).unwrap();
        let rp = parallel.run(cap).unwrap();
        assert_eq!((rp.cycles, rp.reason), (rs.cycles, rs.reason), "cap {cap}");
        assert_eq!(
            parallel.snapshot().to_text(),
            serial.snapshot().to_text(),
            "cap {cap}"
        );
    }
    // Lifetime budget (Budget), resumable, same semantics.
    let limits = EngineLimits {
        max_wm: None,
        max_cycles: Some(6),
    };
    let mut eng = EngineBuilder::from_source(&src)
        .unwrap()
        .act_strategy(ActStrategy::parallel())
        .limits(limits)
        .build()
        .unwrap();
    eng.load_startup().unwrap();
    let r = eng.run(100).unwrap();
    assert_eq!(r.reason, StopReason::Budget);
    assert_eq!(r.cycles, 6);
    assert!(eng.budget_exhausted());
}

/// `run(1)` degrades to exactly the serial single-fire cycle, so per-cycle
/// observation loops (CLI trace, CS-history differential tests) are
/// unaffected by the strategy.
#[test]
fn run_one_fires_one_under_parallel() {
    let src = std::fs::read_to_string("programs/triage.ops").expect("read corpus");
    let mut eng = EngineBuilder::from_source(&src)
        .unwrap()
        .act_strategy(ActStrategy::parallel())
        .build()
        .unwrap();
    eng.load_startup().unwrap();
    loop {
        let r = eng.run(1).unwrap();
        if r.reason != StopReason::CycleLimit {
            break;
        }
        assert_eq!(r.cycles, 1);
    }
    let stats = eng.act_stats();
    assert_eq!(stats.fired, stats.groups, "every group was a singleton");
}

/// Gensyms drawn inside a group must come out of the symbol table in
/// conflict-set order, so symbol interning stays byte-identical to serial
/// (the snapshot comparison covers the table via rendered WME fields).
#[test]
fn gensym_order_is_serial_under_grouping() {
    let src = "(literalize seed v)(literalize out tag src)\n\
               (p spawn (seed ^v <v>) --> (bind <g>) (write made <g> from <v> (crlf)) (remove 1))\n\
               (make seed ^v 1)\n\
               (make seed ^v 2)\n\
               (make seed ^v 3)\n\
               (make seed ^v 4)";
    for kind in five_matchers() {
        let label = format!("gensym/{}", kind.name());
        let stats = assert_equivalent(src, kind, 1_000, &label);
        assert_eq!(stats.fired, 4, "{label}");
    }
}

// ---------------------------------------------------------------------------
// Random programs × random scripts.

/// A random RHS action over classes c0..c2 / fields f0..f2, always legal
/// for a production whose first CE binds <v0> <v1> <v2>.
#[derive(Debug, Clone)]
enum GenAction {
    RemoveFirst,
    ModifyFirst(u8, i64),
    Make(u8, u8),
    WriteV(u8),
    BindGensymMake,
    Halt,
}

fn gen_action() -> impl Strategy<Value = GenAction> {
    // Repeated arms weight the distribution toward the consuming actions
    // that keep runs short (the vendored proptest has no `w =>` syntax).
    prop_oneof![
        Just(GenAction::RemoveFirst),
        Just(GenAction::RemoveFirst),
        Just(GenAction::RemoveFirst),
        (0u8..3, 0i64..4).prop_map(|(f, k)| GenAction::ModifyFirst(f, k)),
        (0u8..3, 0u8..3).prop_map(|(c, v)| GenAction::Make(c, v)),
        (0u8..3).prop_map(GenAction::WriteV),
        Just(GenAction::BindGensymMake),
        Just(GenAction::Halt),
    ]
}

#[derive(Debug, Clone)]
struct GenProd {
    classes: Vec<(u8, bool)>, // (class, negated); first is never negated
    tests: Vec<(u8, u8)>,     // (field, const) tests on the first CE
    actions: Vec<GenAction>,
}

fn gen_prod() -> impl Strategy<Value = GenProd> {
    (
        0u8..3,
        proptest::collection::vec((0u8..3, any::<bool>()), 0..2),
        proptest::collection::vec((0u8..3, 0u8..3), 0..2),
        proptest::collection::vec(gen_action(), 1..4),
    )
        .prop_map(|(first, rest, tests, actions)| GenProd {
            classes: std::iter::once((first, false)).chain(rest).collect(),
            tests,
            actions,
        })
}

/// Renders a generated program. The first CE binds all three variables so
/// every action is legal; `remove`/`modify` always target CE 1.
fn render(prods: &[GenProd], wmes: &[(u8, [i64; 3])]) -> String {
    let mut s = String::new();
    for c in 0..3 {
        s.push_str(&format!("(literalize c{c} f0 f1 f2)\n"));
    }
    for (pi, p) in prods.iter().enumerate() {
        s.push_str(&format!("(p p{pi}\n  (c{}", p.classes[0].0));
        s.push_str(" ^f0 <v0> ^f1 <v1> ^f2 <v2>");
        for (f, k) in &p.tests {
            s.push_str(&format!(" ^f{f} {k}"));
        }
        s.push(')');
        for (c, neg) in &p.classes[1..] {
            s.push_str(if *neg { "\n  - (c" } else { "\n  (c" });
            s.push_str(&format!("{c})"));
        }
        s.push_str("\n  -->");
        for a in &p.actions {
            match a {
                GenAction::RemoveFirst => s.push_str(" (remove 1)"),
                GenAction::ModifyFirst(f, k) => {
                    s.push_str(&format!(" (modify 1 ^f{f} (compute <v{f}> + {k}))"))
                }
                GenAction::Make(c, v) => s.push_str(&format!(" (make c{c} ^f0 <v{v}> ^f1 9)")),
                GenAction::WriteV(v) => s.push_str(&format!(" (write p{pi} <v{v}> (crlf))")),
                GenAction::BindGensymMake => {
                    s.push_str(" (bind <gg>) (make c2 ^f2 <gg>)");
                }
                GenAction::Halt => s.push_str(" (halt)"),
            }
        }
        s.push_str(")\n");
    }
    for (c, fields) in wmes {
        s.push_str(&format!(
            "(make c{c} ^f0 {} ^f1 {} ^f2 {})\n",
            fields[0], fields[1], fields[2]
        ));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// Random programs (make/modify/remove/write/gensym/halt RHSes,
    /// negated CEs, constant tests) on random initial working memory:
    /// parallel act must be indistinguishable from serial on all five
    /// matchers — including which runtime error a bad program raises.
    #[test]
    fn parallel_act_equiv_serial(
        prods in proptest::collection::vec(gen_prod(), 1..4),
        wmes in proptest::collection::vec((0u8..3, [0i64..4, 0i64..4, 0i64..4]), 1..8),
        cap in 1u64..60,
    ) {
        let src = render(&prods, &wmes);
        for kind in five_matchers() {
            let label = format!("{}/cap{cap}\n{src}", kind.name());
            assert_equivalent(&src, kind, cap, &label);
        }
    }
}
