//! PSM-E stress sweep: queues x lock schemes x network compile options.
//!
//! Every configuration must (a) keep the scheduler's TaskCount non-negative
//! and at zero across quiescence points, (b) leave no tokens parked on hash
//! lines once quiescent, (c) reconcile its observability registry with the
//! matcher's own `MatchStats`, and (d) produce a per-cycle conflict-set
//! history byte-identical to the sequential vs2 reference — the strongest
//! cross-matcher observable we have.

use parallel_ops5::prelude::*;
use psm::PsmProbe;
use std::sync::{Arc, Mutex};

const PROGRAMS: [&str; 2] = ["blocks", "monkey"];

fn sweep_configs() -> Vec<(PsmConfig, NetworkOptions)> {
    let mut configs = Vec::new();
    for queues in [1usize, 4] {
        for scheme in [LockScheme::Simple, LockScheme::Mrsw] {
            for tuned in [false, true] {
                configs.push((
                    PsmConfig {
                        match_processes: 4,
                        queues,
                        lock_scheme: scheme,
                        buckets: 64,
                        scheduler: psm::SchedulerKind::SpinQueues,
                    },
                    NetworkOptions {
                        sharing: tuned,
                        unlinking: tuned,
                    },
                ));
            }
        }
    }
    configs
}

/// Per-cycle conflict-set history on the vs2 reference (paper-faithful
/// network options).
fn vs2_history(src: &str) -> Vec<u8> {
    let mut eng = EngineBuilder::from_source(src)
        .expect("parse")
        .vs2()
        .network_options(NetworkOptions::default())
        .build()
        .expect("build vs2");
    eng.load_startup().expect("startup");
    cs_history(&mut eng, None, "vs2")
}

/// Runs the engine one cycle at a time, rendering the conflict set after
/// each, and checks the scheduler invariants at every quiescence point when
/// a probe is supplied.
///
/// The act phase submits RHS changes to the matcher immediately (match/act
/// overlap is the parallel design), so the state right after `run` is not a
/// quiescence point — `settle` is what flushes and blocks for one. Applied
/// to reference and candidate alike so the histories stay comparable.
fn cs_history(eng: &mut Engine, probe: Option<&PsmProbe>, label: &str) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let r = eng.run(1).expect("run");
        eng.settle();
        if let Some(p) = probe {
            assert!(p.quiescent(), "{label}: tasks outstanding at quiescence");
            assert_eq!(
                p.task_count(),
                0,
                "{label}: TaskCount must be exactly zero at quiescence"
            );
            assert_eq!(
                p.parked_tokens(),
                0,
                "{label}: tokens left parked on hash lines at quiescence"
            );
        }
        for (prod, tags) in eng.conflict_set().sorted_keys() {
            out.extend_from_slice(format!("{}:{tags:?};", prod.0).as_bytes());
        }
        out.push(b'\n');
        if r.reason != StopReason::CycleLimit {
            break;
        }
    }
    out
}

#[test]
fn psm_sweep_keeps_invariants_and_matches_vs2() {
    for name in PROGRAMS {
        let src = std::fs::read_to_string(format!("programs/{name}.ops")).expect("read corpus");
        let reference = vs2_history(&src);
        assert!(
            reference.len() > 4,
            "{name} produced no conflict-set history"
        );
        for (cfg, opts) in sweep_configs() {
            let label = format!(
                "{name} q{} {:?} sharing={} unlinking={}",
                cfg.queues, cfg.lock_scheme, opts.sharing, opts.unlinking
            );
            let probe_slot: Arc<Mutex<Option<PsmProbe>>> = Arc::new(Mutex::new(None));
            let slot = probe_slot.clone();
            let mut eng = EngineBuilder::from_source(&src)
                .expect("parse")
                .custom_matcher(move |net| {
                    let m = ParMatcher::new(net, cfg);
                    *slot.lock().unwrap() = Some(m.probe());
                    Box::new(m)
                })
                .network_options(opts)
                .obs(ObsConfig::enabled())
                .build()
                .expect("build psm");
            eng.load_startup().expect("startup");
            let probe = probe_slot.lock().unwrap().take().expect("probe captured");

            let history = cs_history(&mut eng, Some(&probe), &label);
            assert_eq!(history, reference, "CS history diverges: {label}");

            // The observability registry must reconcile with the matcher's
            // own statistics: the per-node profile records at exactly the
            // statements that bump the aggregate counters.
            let stats = eng.match_stats();
            let profile = eng.node_profile().expect("psm node profile");
            assert_eq!(
                profile.total_activations(),
                stats.join_activations,
                "{label}: profile activations != MatchStats.join_activations"
            );
            assert_eq!(
                profile.total_scanned(),
                stats.opp_tokens_left + stats.opp_tokens_right,
                "{label}: profile scan volume != opposite-memory token count"
            );

            // Contention counters were absorbed into the registry at
            // quiescence; the spin-queue scheduler must have recorded
            // acquisitions, and every histogram must be internally
            // consistent.
            let snap = eng.obs_registry().expect("registry").snapshot();
            for (hname, h) in snap.histograms() {
                h.validate()
                    .unwrap_or_else(|e| panic!("{label}: {hname}: {e}"));
            }
            let acqs = snap
                .metrics
                .iter()
                .find(|m| m.name == "psm_queue_lock_acquisitions_total")
                .expect("queue acquisition counter registered");
            match acqs.data {
                obs::MetricData::Counter(v) => {
                    assert!(v > 0, "{label}: no queue-lock acquisitions recorded")
                }
                ref other => panic!("{label}: unexpected metric shape {other:?}"),
            }
        }
    }
}
