//! Property-based tests (proptest) on the match engines.
//!
//! Strategy: generate small random programs over a fixed vocabulary of
//! classes/attributes/values, plus random add/remove streams, and require
//! that every engine computes the identical final conflict set. Also checks
//! core invariants: token memories drain when everything is retracted, the
//! parallel matcher leaves no parked conjugate tokens at quiescence, and
//! TaskCount returns to zero.

use ops5::{ChangeBatch, CsChange, Matcher, Program, Sign, Value, Wme, WmeChange, WmeRef};
use proptest::prelude::*;
use psm::{LockScheme, ParMatcher, PsmConfig};
use rete::network::Network;
use rete::HashMemConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A random condition element over classes c0..c2, fields 0..2, values 0..3
/// or variables v0..v2.
#[derive(Debug, Clone)]
struct GenCe {
    class: u8,
    negated: bool,
    tests: Vec<(u8, GenTest)>,
}

#[derive(Debug, Clone)]
enum GenTest {
    Const(u8),
    Var(u8),
    VarNe(u8),
}

fn gen_ce(negated: bool) -> impl Strategy<Value = GenCe> {
    (
        0u8..3,
        proptest::collection::vec((0u8..3, gen_test()), 0..3),
    )
        .prop_map(move |(class, tests)| GenCe {
            class,
            negated,
            tests,
        })
}

fn gen_test() -> impl Strategy<Value = GenTest> {
    prop_oneof![
        (0u8..4).prop_map(GenTest::Const),
        (0u8..3).prop_map(GenTest::Var),
        (0u8..3).prop_map(GenTest::VarNe),
    ]
}

#[derive(Debug, Clone)]
struct GenProgram {
    prods: Vec<Vec<GenCe>>,
}

fn gen_program() -> impl Strategy<Value = GenProgram> {
    proptest::collection::vec(
        (
            gen_ce(false),
            proptest::collection::vec((gen_ce(false), any::<bool>()), 0..3),
        ),
        1..4,
    )
    .prop_map(|prods| GenProgram {
        prods: prods
            .into_iter()
            .map(|(first, rest)| {
                let mut lhs = vec![first];
                for (mut ce, neg) in rest {
                    ce.negated = neg;
                    lhs.push(ce);
                }
                lhs
            })
            .collect(),
    })
}

/// Renders the generated program as OPS5 source. Variables appearing in only
/// one place are still legal; VarNe tests against variables that end up
/// unbound would be compile errors, so every production pre-binds all three
/// variables in its first CE.
fn render(prog: &GenProgram) -> String {
    let mut s = String::new();
    // Fix the field layout up front so WME construction in the test can use
    // positional fields f0, f1, f2 for every class.
    for c in 0..3 {
        s.push_str(&format!("(literalize c{c} f0 f1 f2)\n"));
    }
    for (pi, lhs) in prog.prods.iter().enumerate() {
        s.push_str(&format!("(p p{pi}\n"));
        for (ci, ce) in lhs.iter().enumerate() {
            if ce.negated && ci > 0 {
                s.push_str("  - ");
            } else {
                s.push_str("  ");
            }
            s.push_str(&format!("(c{}", ce.class));
            if ci == 0 {
                // Bind all variables so later predicates are always legal.
                s.push_str(" ^f0 <v0> ^f1 <v1> ^f2 <v2>");
            }
            for (field, t) in &ce.tests {
                match t {
                    GenTest::Const(v) => s.push_str(&format!(" ^f{field} {v}")),
                    GenTest::Var(v) => s.push_str(&format!(" ^f{field} <v{v}>")),
                    GenTest::VarNe(v) => s.push_str(&format!(" ^f{field} <> <v{v}>")),
                }
            }
            s.push_str(")\n");
        }
        // The RHS is irrelevant: these tests drive matchers directly.
        s.push_str("  --> (halt))\n");
    }
    s
}

/// A random WME stream: adds, and removes of previously-added elements.
fn gen_stream() -> impl Strategy<Value = Vec<(u8, [u8; 3], bool)>> {
    proptest::collection::vec((0u8..3, [0u8..4, 0u8..4, 0u8..4], any::<bool>()), 1..25)
}

type CsState = BTreeSet<(u32, Vec<u64>)>;

fn apply_cs(set: &mut CsState, changes: Vec<CsChange>) {
    for c in changes {
        match c {
            CsChange::Insert(i) => {
                let k = i.key();
                set.insert((k.0 .0, k.1));
            }
            CsChange::Remove(i) => {
                let k = i.key();
                set.remove(&(k.0 .0, k.1));
            }
        }
    }
}

fn final_cs(m: &mut dyn Matcher, changes: &[WmeChange]) -> CsState {
    for c in changes {
        m.submit(&ChangeBatch::single(c.clone()));
    }
    let mut set = BTreeSet::new();
    apply_cs(&mut set, m.quiesce().cs_changes);
    set
}

/// Feeds `changes` in chunks of the (cycled) `chunk_lens` sizes, quiescing
/// at every chunk boundary. `batched` picks whole-`ChangeBatch` submission
/// vs one single-change `submit` per change with the same quiesce points. Returns the
/// net conflict-set state observed after each quiesce.
fn chunked_cs_history(
    m: &mut dyn Matcher,
    changes: &[WmeChange],
    chunk_lens: &[usize],
    batched: bool,
) -> Vec<CsState> {
    let mut set = BTreeSet::new();
    let mut history = Vec::new();
    let mut i = 0;
    let mut ci = 0;
    while i < changes.len() {
        let n = chunk_lens[ci % chunk_lens.len()].max(1);
        ci += 1;
        let chunk = &changes[i..(i + n).min(changes.len())];
        i += n;
        if batched {
            let batch: ChangeBatch = chunk.iter().cloned().collect();
            m.submit(&batch);
        } else {
            for c in chunk {
                m.submit(&ChangeBatch::single(c.clone()));
            }
        }
        apply_cs(&mut set, m.quiesce().cs_changes);
        history.push(set.clone());
    }
    history
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn engines_agree_on_random_programs(genp in gen_program(), stream in gen_stream()) {
        let src = render(&genp);
        let prog = Program::from_source(&src).expect("generated source parses");
        let net = Arc::new(Network::compile(&prog).expect("network compiles"));

        // Build the change stream: adds, and removes of live elements.
        let mut live: Vec<WmeRef> = Vec::new();
        let mut changes = Vec::new();
        let mut tag = 1u64;
        for (class, fields, remove) in &stream {
            if *remove && !live.is_empty() {
                let w = live.swap_remove((*class as usize) % live.len());
                changes.push(WmeChange { sign: Sign::Minus, wme: w });
            } else {
                let cs = prog.symbols.get(&format!("c{class}")).unwrap();
                let w = Wme::new(
                    cs,
                    fields.iter().map(|&v| Value::Int(v as i64)).collect(),
                    tag,
                );
                tag += 1;
                live.push(w.clone());
                changes.push(WmeChange { sign: Sign::Plus, wme: w });
            }
        }

        let mut vs1 = rete::seq::boxed_vs1(net.clone());
        let reference = final_cs(vs1.as_mut(), &changes);

        let mut vs2 = rete::seq::boxed_vs2(net.clone(), HashMemConfig { buckets: 16 });
        prop_assert_eq!(final_cs(vs2.as_mut(), &changes), reference.clone(), "vs2 disagrees");

        let mut lisp = lispsim::LispEngineMatcher::boxed(&prog);
        prop_assert_eq!(final_cs(lisp.as_mut(), &changes), reference.clone(), "lisp disagrees");

        let mut col = rete::colmatch::boxed_col(net.clone());
        prop_assert_eq!(final_cs(col.as_mut(), &changes), reference.clone(), "col disagrees");

        for scheme in [LockScheme::Simple, LockScheme::Mrsw] {
            let mut par = ParMatcher::new(
                net.clone(),
                PsmConfig { match_processes: 3, queues: 2, lock_scheme: scheme, buckets: 16, scheduler: psm::SchedulerKind::SpinQueues },
            );
            prop_assert_eq!(
                final_cs(&mut par, &changes),
                reference.clone(),
                "psm {:?} disagrees",
                scheme
            );
            prop_assert_eq!(par.parked_tokens(), 0, "conjugate tokens parked at quiescence");
        }

        // Beta-prefix sharing + unlinking must be invisible: matchers on the
        // tuned network agree with the unshared baseline on the same stream.
        let opts = rete::NetworkOptions { sharing: true, unlinking: true };
        let tuned = Arc::new(Network::compile_with(&prog, opts).expect("tuned network compiles"));
        let mut vs1t = rete::seq::boxed_vs1(tuned.clone());
        prop_assert_eq!(final_cs(vs1t.as_mut(), &changes), reference.clone(), "tuned vs1 disagrees");
        let mut vs2t = rete::seq::boxed_vs2(tuned.clone(), HashMemConfig { buckets: 16 });
        prop_assert_eq!(final_cs(vs2t.as_mut(), &changes), reference.clone(), "tuned vs2 disagrees");
        let mut lispt = lispsim::LispEngineMatcher::boxed_with(&prog, opts);
        prop_assert_eq!(final_cs(lispt.as_mut(), &changes), reference.clone(), "unlinking lisp disagrees");
        let mut colt = rete::colmatch::boxed_col(tuned.clone());
        prop_assert_eq!(final_cs(colt.as_mut(), &changes), reference.clone(), "tuned col disagrees");
        for scheme in [LockScheme::Simple, LockScheme::Mrsw] {
            let mut par = ParMatcher::new(
                tuned.clone(),
                PsmConfig { match_processes: 3, queues: 2, lock_scheme: scheme, buckets: 16, scheduler: psm::SchedulerKind::SpinQueues },
            );
            prop_assert_eq!(
                final_cs(&mut par, &changes),
                reference.clone(),
                "tuned psm {:?} disagrees",
                scheme
            );
            prop_assert_eq!(par.parked_tokens(), 0, "tuned psm parked conjugate tokens");
        }
    }

    #[test]
    fn token_identity_matches_timetag_sequence(
        tags_a in proptest::collection::vec(1u64..64, 0..8),
        tags_b in proptest::collection::vec(1u64..64, 0..8),
    ) {
        // The parent-linked token must be observationally identical to the
        // flat WME-list definition: identity is the timetag sequence, the
        // cached hash is the flat fxhash fold over it, and walking the
        // chain reproduces the sequence front to back.
        let class = ops5::SymbolId(0);
        let mk = |tags: &[u64]| {
            let mut t = rete::Token::empty();
            for &tag in tags {
                t = t.extended(Wme::new(class, vec![], tag));
            }
            t
        };
        let (ta, tb) = (mk(&tags_a), mk(&tags_b));
        prop_assert_eq!(ta.same_wmes(&tb), tags_a == tags_b);
        prop_assert_eq!(tb.same_wmes(&ta), tags_a == tags_b);
        prop_assert_eq!(
            ta.identity_hash(),
            rete::fxhash::hash_words(tags_a.iter().copied())
        );
        if tags_a == tags_b {
            prop_assert_eq!(ta.identity_hash(), tb.identity_hash());
        }
        prop_assert_eq!(ta.timetags(), tags_a.clone());
        prop_assert_eq!(
            ta.wme_vec().iter().map(|w| w.timetag).collect::<Vec<u64>>(),
            tags_a.clone()
        );
        prop_assert_eq!(ta.len(), tags_a.len());
        // Extending shares the parent chain: both extensions agree with
        // the flat definition independently.
        let ext_a = ta.extended(Wme::new(class, vec![], 99));
        let ext_b = ta.extended(Wme::new(class, vec![], 98));
        prop_assert!(!ext_a.same_wmes(&ext_b));
        let mut flat_a = tags_a.clone();
        flat_a.push(99);
        prop_assert_eq!(ext_a.identity_hash(), rete::fxhash::hash_words(flat_a));
    }

    #[test]
    fn batch_chunking_is_invariant(
        genp in gen_program(),
        stream in gen_stream(),
        chunk_lens in proptest::collection::vec(1usize..6, 1..8),
    ) {
        // Submitting one change at a time must be indistinguishable from
        // re-chunking the same stream into arbitrary ChangeBatches: the net
        // conflict-set state at every quiesce point is identical, for all
        // five matchers.
        let src = render(&genp);
        let prog = Program::from_source(&src).expect("generated source parses");
        let net = Arc::new(Network::compile(&prog).expect("network compiles"));

        let mut live: Vec<WmeRef> = Vec::new();
        let mut changes = Vec::new();
        let mut tag = 1u64;
        for (class, fields, remove) in &stream {
            if *remove && !live.is_empty() {
                let w = live.swap_remove((*class as usize) % live.len());
                changes.push(WmeChange { sign: Sign::Minus, wme: w });
            } else {
                let cs = prog.symbols.get(&format!("c{class}")).unwrap();
                let w = Wme::new(
                    cs,
                    fields.iter().map(|&v| Value::Int(v as i64)).collect(),
                    tag,
                );
                tag += 1;
                live.push(w.clone());
                changes.push(WmeChange { sign: Sign::Plus, wme: w });
            }
        }

        type MatcherFactory = Box<dyn Fn() -> Box<dyn Matcher>>;
        let factories: Vec<(&str, MatcherFactory)> = vec![
            ("vs1", Box::new({
                let net = net.clone();
                move || rete::seq::boxed_vs1(net.clone())
            })),
            ("vs2", Box::new({
                let net = net.clone();
                move || rete::seq::boxed_vs2(net.clone(), HashMemConfig { buckets: 16 })
            })),
            ("lisp", Box::new({
                let prog = prog.clone();
                move || lispsim::LispEngineMatcher::boxed(&prog)
            })),
            ("col", Box::new({
                let net = net.clone();
                move || rete::colmatch::boxed_col(net.clone())
            })),
        ];
        for (name, mk) in &factories {
            let per_change = chunked_cs_history(mk().as_mut(), &changes, &chunk_lens, false);
            let batched = chunked_cs_history(mk().as_mut(), &changes, &chunk_lens, true);
            prop_assert_eq!(per_change, batched, "{}: chunking changed the CS history", name);
        }
        for scheme in [LockScheme::Simple, LockScheme::Mrsw] {
            let cfg = PsmConfig {
                match_processes: 3,
                queues: 2,
                lock_scheme: scheme,
                buckets: 16,
                scheduler: psm::SchedulerKind::SpinQueues,
            };
            let mut a = ParMatcher::new(net.clone(), cfg);
            let per_change = chunked_cs_history(&mut a, &changes, &chunk_lens, false);
            let mut b = ParMatcher::new(net.clone(), cfg);
            let batched = chunked_cs_history(&mut b, &changes, &chunk_lens, true);
            prop_assert_eq!(per_change, batched, "psm {:?}: chunking changed the CS history", scheme);
            prop_assert_eq!(a.parked_tokens(), 0);
            prop_assert_eq!(b.parked_tokens(), 0, "psm {:?}: batched run parked conjugate tokens", scheme);
        }
    }

    #[test]
    fn printer_roundtrip_preserves_semantics(genp in gen_program(), stream in gen_stream()) {
        // parse → print → reparse must give a semantically identical
        // program: same final conflict set on the same WME stream.
        let src = render(&genp);
        let prog = Program::from_source(&src).expect("parses");
        let printed = ops5::printer::print_program(&prog);
        let prog2 = Program::from_source(&printed)
            .unwrap_or_else(|e| panic!("printed program fails to reparse: {e}\n{printed}"));
        let net1 = Arc::new(Network::compile(&prog).expect("net1"));
        let net2 = Arc::new(Network::compile(&prog2).expect("net2"));

        let mk = |prog: &Program, class: u8, fields: &[u8; 3], tag: u64| {
            let c = prog.symbols.get(&format!("c{class}")).unwrap();
            Wme::new(c, fields.iter().map(|&v| Value::Int(v as i64)).collect(), tag)
        };
        let mut m1 = rete::seq::boxed_vs2(net1, HashMemConfig { buckets: 16 });
        let mut m2 = rete::seq::boxed_vs2(net2, HashMemConfig { buckets: 16 });
        let mut ch1 = Vec::new();
        let mut ch2 = Vec::new();
        for (tag, (class, fields, _)) in (1u64..).zip(stream.iter()) {
            ch1.push(WmeChange { sign: Sign::Plus, wme: mk(&prog, *class, fields, tag) });
            ch2.push(WmeChange { sign: Sign::Plus, wme: mk(&prog2, *class, fields, tag) });
        }
        prop_assert_eq!(final_cs(m1.as_mut(), &ch1), final_cs(m2.as_mut(), &ch2));
    }

    #[test]
    fn col_compaction_bounds_tombstone_ratio(
        genp in gen_program(),
        stream in gen_stream(),
        chunk_lens in proptest::collection::vec(1usize..6, 1..8),
    ) {
        // Random assert/retract interleavings, quiesced at random chunk
        // boundaries, must never leave any columnar bucket with a tombstone
        // ratio at or above the compaction threshold — and a col matcher
        // must agree with vs1 on the final conflict set while doing it.
        let src = render(&genp);
        let prog = Program::from_source(&src).expect("generated source parses");
        let net = Arc::new(Network::compile(&prog).expect("network compiles"));

        let mut live: Vec<WmeRef> = Vec::new();
        let mut changes = Vec::new();
        let mut tag = 1u64;
        for (class, fields, remove) in &stream {
            if *remove && !live.is_empty() {
                let w = live.swap_remove((*class as usize) % live.len());
                changes.push(WmeChange { sign: Sign::Minus, wme: w });
            } else {
                let cs = prog.symbols.get(&format!("c{class}")).unwrap();
                let w = Wme::new(
                    cs,
                    fields.iter().map(|&v| Value::Int(v as i64)).collect(),
                    tag,
                );
                tag += 1;
                live.push(w.clone());
                changes.push(WmeChange { sign: Sign::Plus, wme: w });
            }
        }

        let mut col = rete::ColMatcher::new(net.clone());
        let mut i = 0;
        let mut ci = 0;
        while i < changes.len() {
            let n = chunk_lens[ci % chunk_lens.len()];
            ci += 1;
            let batch: ChangeBatch = changes[i..(i + n).min(changes.len())].iter().cloned().collect();
            i += n;
            col.submit(&batch);
            col.quiesce();
            prop_assert!(
                col.max_tombstone_ratio() < rete::colmatch::COMPACT_TOMBSTONE_RATIO,
                "tombstone ratio {} reached the compaction threshold after quiesce",
                col.max_tombstone_ratio()
            );
        }
        let mut vs1 = rete::seq::boxed_vs1(net);
        let reference = final_cs(vs1.as_mut(), &changes);
        let mut col_state = BTreeSet::new();
        let mut col2 = rete::ColMatcher::new(Arc::new(Network::compile(&prog).unwrap()));
        for c in &changes {
            col2.submit(&ChangeBatch::single(c.clone()));
        }
        apply_cs(&mut col_state, col2.quiesce().cs_changes);
        prop_assert_eq!(col_state, reference, "col disagrees with vs1");
    }

    #[test]
    fn add_then_remove_everything_leaves_empty_cs(genp in gen_program(), stream in gen_stream()) {
        let src = render(&genp);
        let mut prog = Program::from_source(&src).expect("parses");
        let net = Arc::new(Network::compile(&prog).expect("compiles"));
        let mut adds = Vec::new();
        for (tag, (class, fields, _)) in (1u64..).zip(stream.iter()) {
            let cs = prog.symbols.intern(&format!("c{class}"));
            adds.push(Wme::new(
                cs,
                fields.iter().map(|&v| Value::Int(v as i64)).collect(),
                tag,
            ));
        }
        let mut changes: Vec<WmeChange> = adds
            .iter()
            .map(|w| WmeChange { sign: Sign::Plus, wme: w.clone() })
            .collect();
        changes.extend(adds.iter().map(|w| WmeChange { sign: Sign::Minus, wme: w.clone() }));

        let mut par = ParMatcher::new(
            net,
            PsmConfig { match_processes: 2, queues: 2, lock_scheme: LockScheme::Simple, buckets: 16, scheduler: psm::SchedulerKind::SpinQueues },
        );
        let cs = final_cs(&mut par, &changes);
        prop_assert!(cs.is_empty(), "retracting all WMEs must empty the conflict set: {cs:?}");
        prop_assert_eq!(par.parked_tokens(), 0);
    }
}
