//! Integration tests for the serve layer: served sessions must be
//! observably identical to direct in-process engine runs, on every matcher.

use parallel_ops5::prelude::*;
use proptest::prelude::*;
use serve::{matcher_kind, FrontEnd, Registry, ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::OnceLock;

/// One shared server for the whole test binary (leaked; the process exit
/// reaps it). Deep inboxes: these tests exercise semantics, not
/// backpressure. Uses the default (reactor) front-end.
fn server_addr() -> SocketAddr {
    static SERVER: OnceLock<SocketAddr> = OnceLock::new();
    *SERVER.get_or_init(|| {
        let cfg = ServeConfig {
            workers: 2,
            queue_depth: 512,
            programs_dir: Some("programs".into()),
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
        let addr = handle.addr;
        std::mem::forget(handle);
        addr
    })
}

/// A second shared server on the legacy thread-per-connection front-end,
/// so every cross-front-end test can diff the two reply streams.
fn threads_server_addr() -> SocketAddr {
    static SERVER: OnceLock<SocketAddr> = OnceLock::new();
    *SERVER.get_or_init(|| {
        let cfg = ServeConfig {
            workers: 2,
            queue_depth: 512,
            programs_dir: Some("programs".into()),
            front_end: FrontEnd::Threads,
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
        let addr = handle.addr;
        std::mem::forget(handle);
        addr
    })
}

fn fired_lines(eng: &Engine) -> Vec<String> {
    eng.fired_log()
        .iter()
        .map(|(p, tags)| {
            let t: Vec<String> = tags.iter().map(|x| x.to_string()).collect();
            format!("{} {}", eng.prog.prod_name(*p), t.join(" "))
        })
        .collect()
}

fn cs_lines(eng: &Engine) -> Vec<String> {
    eng.conflict_set()
        .sorted_keys()
        .iter()
        .map(|(p, tags)| {
            let t: Vec<String> = tags.iter().map(|x| x.to_string()).collect();
            format!("{} {}", eng.prog.prod_name(*p), t.join(" "))
        })
        .collect()
}

/// Every corpus program, served on a PSM session and run in bounded `RUN`
/// chunks, fires exactly like a direct engine run of the same profile.
#[test]
fn served_corpus_matches_direct_runs() {
    let addr = server_addr();
    let reg = Registry::with_builtins(Some("programs".as_ref()));
    for program in ["blocks", "fibonacci", "monkey", "hanoi", "rubik"] {
        let mut eng = reg
            .get(program)
            .unwrap()
            .build(matcher_kind("psm").unwrap(), Default::default(), None)
            .unwrap();
        eng.run(400_000).unwrap();
        let reference = fired_lines(&eng);
        assert!(!reference.is_empty(), "{program} did nothing");

        let mut c = serve::Client::connect(addr).unwrap();
        c.open(program, Some("psm")).unwrap().expect_ok().unwrap();
        for _ in 0..400 {
            let payload = c.run(1000).unwrap().expect_ok().unwrap();
            if !payload.contains("reason=limit") {
                break;
            }
        }
        let fired = c.fired().unwrap().expect_lines().unwrap();
        assert_eq!(fired, reference, "served {program} diverged");
        c.close().unwrap().expect_ok().unwrap();
    }
}

/// Several concurrent connections of mixed corpus programs, all equal to
/// their direct references — the in-test miniature of `serve_load`.
#[test]
fn concurrent_mixed_sessions_all_agree() {
    let addr = server_addr();
    let reg = Registry::with_builtins(Some("programs".as_ref()));
    let programs = ["blocks", "hanoi", "monkey", "blocks", "hanoi", "monkey"];
    let refs: Vec<Vec<String>> = programs
        .iter()
        .map(|p| {
            let mut eng = reg
                .get(p)
                .unwrap()
                .build(matcher_kind("psm").unwrap(), Default::default(), None)
                .unwrap();
            eng.run(400_000).unwrap();
            fired_lines(&eng)
        })
        .collect();
    let threads: Vec<_> = programs
        .into_iter()
        .zip(refs)
        .map(|(program, reference)| {
            std::thread::spawn(move || {
                let mut c = serve::Client::connect(addr).unwrap();
                c.open(program, Some("psm")).unwrap().expect_ok().unwrap();
                for _ in 0..400 {
                    let payload = c.run(500).unwrap().expect_ok().unwrap();
                    if !payload.contains("reason=limit") {
                        break;
                    }
                }
                let fired = c.fired().unwrap().expect_lines().unwrap();
                assert_eq!(fired, reference, "served {program} diverged");
                c.close().unwrap().expect_ok().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

/// `WM?` with a name that is not a class — never interned, or interned as
/// an attribute — must be an explicit error over the wire, not `WM 0`.
#[test]
fn wm_unknown_class_errors_over_wire() {
    let addr = server_addr();
    let mut c = serve::Client::connect(addr).unwrap();
    c.open_source(PROP_SRC, Some("vs2"))
        .unwrap()
        .expect_ok()
        .unwrap();
    c.assert_wme("a ^x 1 ^y 2").unwrap().unwrap();
    c.run(0).unwrap().expect_ok().unwrap();
    match c.wm(Some("nosuch")).unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("unknown class `nosuch`"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    // `x` is interned (it is an attribute) but is not a class.
    match c.wm(Some("x")).unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("unknown class `x`"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    // Real classes still answer.
    let lines = c.wm(Some("a")).unwrap().expect_lines().unwrap();
    assert_eq!(lines.len(), 1);
    c.close().unwrap().expect_ok().unwrap();
}

/// Malformed batch bodies must name the offending 1-based line (blanks
/// count: the number matches what the client actually sent after `BATCH`).
#[test]
fn batch_errors_name_the_offending_line() {
    let addr = server_addr();
    let mut c = serve::Client::connect(addr).unwrap();
    c.open_source(PROP_SRC, Some("vs2"))
        .unwrap()
        .expect_ok()
        .unwrap();

    // Line 3 (after one good ASSERT and one blank) fails to parse. The
    // framing loop stops at the bad line, so the trailing END falls through
    // as a top-level command and earns its own error reply.
    for l in ["BATCH", "ASSERT a ^x 1", "", "RETRACT nope", "END"] {
        c.send_line(l).unwrap();
    }
    match c.read_reply().unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.starts_with("BATCH line 3:"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    match c.read_reply().unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("END outside BATCH"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }

    // A body that parses but stages an unknown class fails at execute time,
    // still naming its line.
    for l in ["BATCH", "ASSERT a ^x 1", "ASSERT zork ^q 1", "END"] {
        c.send_line(l).unwrap();
    }
    match c.read_reply().unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.starts_with("BATCH line 2:"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }

    // A non-ASSERT/RETRACT verb inside a batch names its line too (again
    // with the trailing END falling through).
    for l in ["BATCH", "ASSERT a ^x 1", "RUN 5", "END"] {
        c.send_line(l).unwrap();
    }
    match c.read_reply().unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.starts_with("BATCH line 2:"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    match c.read_reply().unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("END outside BATCH"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    c.close().unwrap().expect_ok().unwrap();
}

/// `METRICS?` against a server without observability is an explicit error.
#[test]
fn metrics_query_errors_when_obs_disabled() {
    let addr = server_addr();
    let mut c = serve::Client::connect(addr).unwrap();
    match c.metrics().unwrap() {
        serve::ClientReply::Err(msg) => assert!(msg.contains("disabled"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
}

/// Boots an obs-enabled server with the HTTP endpoint, runs one session per
/// matcher, and checks both the `METRICS?` round-trip and the endpoint
/// scrape expose per-session phase histograms, per-node profiles, and the
/// pool's per-command latencies.
#[test]
fn metrics_roundtrip_and_endpoint_scrape() {
    let cfg = ServeConfig {
        workers: 2,
        queue_depth: 512,
        programs_dir: Some("programs".into()),
        obs: ObsConfig::enabled(),
        metrics_port: Some(0),
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
    let addr = handle.addr;
    let metrics_addr = handle.metrics_addr.expect("metrics endpoint bound");

    // One live session per matcher, each having done some work. Kept open so
    // METRICS? still sees them.
    let mut clients = Vec::new();
    for m in ["vs1", "vs2", "lisp", "psm", "col"] {
        let mut c = serve::Client::connect(addr).unwrap();
        c.open("blocks", Some(m)).unwrap().expect_ok().unwrap();
        c.run(100).unwrap().expect_ok().unwrap();
        clients.push(c);
    }

    let lines = clients[0].metrics().unwrap().expect_lines().unwrap();
    let text = lines.join("\n");
    // Every matcher kind reports a distinct name; all five sessions must
    // show up individually.
    for m in ["vs1", "vs2", "lispsim", "psm-e", "col"] {
        assert!(
            text.contains(&format!("matcher=\"{m}\"")),
            "exposition missing matcher {m}:\n{text}"
        );
    }
    for sid in 1..=5 {
        assert!(
            text.contains(&format!("session=\"{sid}\"")),
            "exposition missing session {sid}:\n{text}"
        );
    }
    // The columnar matcher's bucket scan-length histogram is exposed.
    assert!(text.contains("col_bucket_scan_len_bucket"), "{text}");
    // Phase histograms per session, pool command latencies, psm worker
    // instruments, and per-node profiling for the rete-based matchers.
    assert!(text.contains("engine_match_ns_bucket"), "{text}");
    assert!(text.contains("engine_act_ns_sum"), "{text}");
    assert!(text.contains("serve_command_ns_bucket"), "{text}");
    assert!(text.contains("cmd=\"run\""), "{text}");
    assert!(text.contains("psm_task_latency_ns_bucket"), "{text}");
    assert!(text.contains("rete_join_activations_total"), "{text}");
    assert!(text.contains("prod="), "{text}");

    // The HTTP endpoint serves the same exposition.
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(metrics_addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).expect("http body");
        assert!(body.contains("engine_match_ns_bucket"), "{body}");
        assert!(body.contains("serve_command_ns_bucket"), "{body}");
    }

    for mut c in clients {
        c.close().unwrap().expect_ok().unwrap();
    }
    let mut c = serve::Client::connect(addr).unwrap();
    c.shutdown().unwrap().expect_ok().unwrap();
    handle.join().unwrap();
}

/// Writes `bytes` to a raw socket in `chunk`-sized pieces with small
/// pauses (forcing the server to see arbitrary partial-line read
/// boundaries), then reads exactly `expected` framed replies.
fn drive_raw(addr: SocketAddr, bytes: &[u8], chunk: usize, expected: usize) -> Vec<String> {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    for piece in bytes.chunks(chunk) {
        s.write_all(piece).unwrap();
        std::thread::sleep(std::time::Duration::from_micros(300));
    }
    let mut buf = Vec::new();
    let mut replies = Vec::new();
    let mut cur: Vec<String> = Vec::new();
    let mut scan = 0usize;
    while replies.len() < expected {
        // Pull complete lines out of what has arrived so far.
        while let Some(nl) = buf[scan..].iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&buf[scan..scan + nl])
                .trim_end_matches('\r')
                .to_string();
            scan += nl + 1;
            let first = cur.is_empty();
            cur.push(line);
            let done = if first {
                let head = cur.last().unwrap();
                ["OK", "ERR", "BUSY", "OVERLOADED"]
                    .iter()
                    .any(|p| head == p || head.starts_with(&format!("{p} ")))
            } else {
                cur.last().unwrap() == "END"
            };
            if done {
                replies.push(std::mem::take(&mut cur).join("\n"));
            }
        }
        if replies.len() >= expected {
            break;
        }
        let mut tmp = [0u8; 4096];
        let n = s.read(&mut tmp).unwrap();
        assert!(n > 0, "EOF after {} of {expected} replies", replies.len());
        buf.extend_from_slice(&tmp[..n]);
    }
    replies
}

/// Replaces the per-connection session id so reply streams from different
/// connections (and servers) compare equal.
fn normalize_session_ids(replies: &[String]) -> Vec<String> {
    replies
        .iter()
        .map(|r| match r.find("session ") {
            Some(at) => {
                let digits = r[at + 8..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .count();
                format!("{}session N{}", &r[..at], &r[at + 8 + digits..])
            }
            None => r.clone(),
        })
        .collect()
}

/// The satellite test: a script covering an inline `OPEN -` body, a
/// `BATCH` body (including a mid-body parse error), and every common
/// verb, delivered at byte granularities that split lines, bodies, and
/// even UTF-8-safe ASCII tokens across reads. All chunkings on both
/// front-ends must produce the identical reply stream.
#[test]
fn fragmented_writes_parse_identically_on_both_front_ends() {
    let script = "OPEN - vs2\n\
        (literalize a x y)\n\
        (literalize b x y)\n\
        (p join (a ^x <x> ^y <y>) (b ^x <x>) --> (halt))\n\
        end\n\
        ASSERT a ^x 1 ^y 2\n\
        BATCH\n\
        ASSERT a ^x 2 ^y 1\n\
        ASSERT b ^x 1 ^y 0\n\
        END\n\
        BATCH\n\
        ASSERT a ^x 3 ^y 3\n\
        RUN 1\n\
        END\n\
        RUN 0\n\
        CS?\n\
        WM? a\n\
        NOSUCHVERB\n\
        CLOSE\n";
    // Replies: OPEN, ASSERT, BATCH, BATCH-error, stray END, RUN, CS?,
    // WM?, parse error, CLOSE.
    let expected = 10;
    let mut streams = Vec::new();
    for addr in [server_addr(), threads_server_addr()] {
        for chunk in [1usize, 3, 7, 4096] {
            let replies = drive_raw(addr, script.as_bytes(), chunk, expected);
            assert!(
                replies[0].starts_with("OK session "),
                "OPEN reply: {}",
                replies[0]
            );
            assert!(
                replies[3].starts_with("ERR BATCH line 2:"),
                "batch abort reply: {}",
                replies[3]
            );
            assert!(
                replies[4].contains("END outside BATCH"),
                "stray END reply: {}",
                replies[4]
            );
            streams.push(normalize_session_ids(&replies));
        }
    }
    for s in &streams[1..] {
        assert_eq!(
            s, &streams[0],
            "reply stream diverged across chunkings/front-ends"
        );
    }
}

/// `RESTORE` bodies (snapshot text, which itself contains a lowercase
/// `end` terminator line) survive arbitrary read boundaries on both
/// front-ends, and the restored sessions behave identically.
#[test]
fn fragmented_restore_parses_identically_on_both_front_ends() {
    // Capture a mid-run snapshot once, from a session on the reactor
    // server.
    let mut c = serve::Client::connect(server_addr()).unwrap();
    c.open("blocks", Some("vs2")).unwrap().expect_ok().unwrap();
    c.run(5).unwrap().expect_ok().unwrap();
    let snapshot = c.snapshot().unwrap().expect_lines().unwrap();
    c.close().unwrap().expect_ok().unwrap();

    let mut script = String::from("RESTORE blocks vs2\n");
    for l in &snapshot {
        script.push_str(l);
        script.push('\n');
    }
    script.push_str("END\nRUN 0\nFIRED?\nCLOSE\n");
    let expected = 4; // RESTORE, RUN, FIRED?, CLOSE

    let mut streams = Vec::new();
    for addr in [server_addr(), threads_server_addr()] {
        for chunk in [7usize, 64, 997] {
            let replies = drive_raw(addr, script.as_bytes(), chunk, expected);
            assert!(
                replies[0].starts_with("OK session ") && replies[0].contains("replayed="),
                "RESTORE reply: {}",
                replies[0]
            );
            streams.push(normalize_session_ids(&replies));
        }
    }
    for s in &streams[1..] {
        assert_eq!(
            s, &streams[0],
            "restore stream diverged across chunkings/front-ends"
        );
    }
}

/// The reactor front-end's slow-client guard: a connection that floods
/// commands without ever reading replies is eventually cut off with a
/// final `ERR overloaded` instead of buffering without bound.
#[test]
fn slow_client_is_disconnected_with_final_error() {
    use std::io::{Read, Write};
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 512,
        programs_dir: Some("programs".into()),
        // Tiny outbound cap so the test trips it quickly.
        write_buf_cap: 2048,
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
    let addr = handle.addr;

    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    // Build a session whose WM? dump is a few KB, then flood WM? without
    // ever reading a reply: the outbound data dwarfs the kernel socket
    // buffers, so the server-side write buffer must hit its cap.
    let mut setup =
        String::from("OPEN - vs2\n(literalize a x)\n(p never (a ^x -1) --> (halt))\nEND\nBATCH\n");
    for i in 0..200 {
        setup.push_str(&format!("ASSERT a ^x {i}\n"));
    }
    setup.push_str("END\nRUN 0\n");
    s.write_all(setup.as_bytes()).unwrap();
    let mut tripped = false;
    for _ in 0..5000 {
        if s.write_all(b"WM?\n").is_err() {
            // Server already closed on us (RST after the final ERR).
            tripped = true;
            break;
        }
    }
    // Now drain. A server without the guard would keep the connection
    // open forever (we time out); the guarded server terminates it —
    // ideally after a final `ERR overloaded`, though the close may reach
    // us as a reset that discards the tail.
    let mut all = Vec::new();
    let mut tmp = [0u8; 65536];
    let mut timed_out = false;
    loop {
        match s.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => all.extend_from_slice(&tmp[..n]),
            Err(e) => {
                timed_out = matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                );
                break;
            }
        }
    }
    let text = String::from_utf8_lossy(&all);
    let saw_final_err = text
        .lines()
        .rev()
        .find(|l| !l.is_empty())
        .map(|l| l.starts_with("ERR overloaded"))
        .unwrap_or(false);
    // Any non-timeout termination counts as a cut-off: the server may close
    // with unread input queued, which sends RST and can discard the final
    // `ERR overloaded` line before we read it.
    assert!(
        !timed_out,
        "slow client was never cut off (tripped={tripped}, saw_final_err={saw_final_err})"
    );

    let mut shut = serve::Client::connect(addr).unwrap();
    shut.shutdown().unwrap().expect_ok().unwrap();
    handle.join().unwrap();
}

/// Regression: an overloaded reactor connection whose client *never*
/// reads must be force-closed after the overload grace period — it must
/// not keep WRITABLE-only interest and pin the fd plus up to
/// `write_buf_cap` bytes indefinitely. The close arrives as a reset
/// (unread input is queued server-side), so the first read after the
/// grace period fails instead of returning buffered reply bytes.
#[test]
fn overloaded_connection_is_force_closed_if_never_drained() {
    use std::io::{Read, Write};
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 512,
        programs_dir: Some("programs".into()),
        write_buf_cap: 2048,
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
    let addr = handle.addr;

    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let mut setup =
        String::from("OPEN - vs2\n(literalize a x)\n(p never (a ^x -1) --> (halt))\nEND\nBATCH\n");
    for i in 0..200 {
        setup.push_str(&format!("ASSERT a ^x {i}\n"));
    }
    setup.push_str("END\nRUN 0\n");
    s.write_all(setup.as_bytes()).unwrap();
    for _ in 0..5000 {
        if s.write_all(b"WM?\n").is_err() {
            break;
        }
    }
    // Never read. Past OVERLOAD_GRACE (5s) plus the sweep cadence, the
    // server must have torn the connection down on its own.
    std::thread::sleep(std::time::Duration::from_secs(7));
    let mut tmp = [0u8; 65536];
    let mut force_closed = false;
    for _ in 0..64 {
        match s.read(&mut tmp) {
            Ok(0) => {
                force_closed = true;
                break;
            }
            Ok(_) => continue, // kernel-buffered bytes from before the close
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break;
            }
            Err(_) => {
                force_closed = true;
                break;
            }
        }
    }
    assert!(
        force_closed,
        "overloaded connection was still alive 7s after the cut-off"
    );

    let mut shut = serve::Client::connect(addr).unwrap();
    shut.shutdown().unwrap().expect_ok().unwrap();
    handle.join().unwrap();
}

const PROP_SRC: &str = "(literalize a x y)
(literalize b x y)
(p join (a ^x <x> ^y <y>) (b ^x <x>) --> (halt))
(p lone (a ^x <x>) - (b ^y <x>) --> (halt))";

/// One generated WME as a protocol `ASSERT` body.
fn gen_wme() -> impl Strategy<Value = String> {
    (prop_oneof!["a", "b"], 0i64..3, 0i64..3)
        .prop_map(|(class, x, y)| format!("{class} ^x {x} ^y {y}"))
}

/// A stream of WMEs plus chunk sizes partitioning it.
fn gen_chunked_stream() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(proptest::collection::vec(gen_wme(), 1..4), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// The satellite property: a session's ASSERTs split across multiple
    /// `RUN 0` settles produce the same conflict-set history, on all four
    /// matchers through the serve layer, as a direct engine staging the
    /// same chunks — and in particular the final CS equals one big batch.
    #[test]
    fn chunked_ingestion_matches_direct_staging(chunks in gen_chunked_stream()) {
        let addr = server_addr();
        for m in ["vs1", "vs2", "lisp", "psm"] {
            // Direct engine: stage chunk, settle, snapshot CS — the ground
            // truth history.
            let mut eng = EngineBuilder::from_source(PROP_SRC)
                .unwrap()
                .matcher(matcher_kind(m).unwrap())
                .build()
                .unwrap();
            let mut want_history = Vec::new();
            for chunk in &chunks {
                for body in chunk {
                    let prog = &mut eng.prog;
                    let (class, fields) =
                        ops5::wire::parse_wme_text(body, &mut prog.symbols, &prog.classes)
                            .unwrap();
                    eng.stage(class, fields).unwrap();
                }
                eng.settle();
                want_history.push(cs_lines(&eng));
            }

            // Served session: same chunks as BATCH + RUN 0, CS? after each.
            let mut c = serve::Client::connect(addr).unwrap();
            c.open_source(PROP_SRC, Some(m)).unwrap().expect_ok().unwrap();
            let mut got_history = Vec::new();
            for chunk in &chunks {
                c.send_line("BATCH").unwrap();
                for body in chunk {
                    c.send_line(&format!("ASSERT {body}")).unwrap();
                }
                c.send_line("END").unwrap();
                c.read_reply().unwrap().expect_ok().unwrap();
                c.run(0).unwrap().expect_ok().unwrap();
                got_history.push(c.cs().unwrap().expect_lines().unwrap());
            }
            c.close().unwrap().expect_ok().unwrap();
            prop_assert_eq!(&got_history, &want_history, "matcher {}", m);

            // And the whole stream in one batch ends at the same CS.
            let mut one = EngineBuilder::from_source(PROP_SRC)
                .unwrap()
                .matcher(matcher_kind(m).unwrap())
                .build()
                .unwrap();
            for body in chunks.iter().flatten() {
                let prog = &mut one.prog;
                let (class, fields) =
                    ops5::wire::parse_wme_text(body, &mut prog.symbols, &prog.classes).unwrap();
                one.stage(class, fields).unwrap();
            }
            one.settle();
            prop_assert_eq!(
                want_history.last().unwrap(),
                &cs_lines(&one),
                "chunked vs one-batch final CS, matcher {}",
                m
            );
        }
    }
}

/// `RUN n` budgets count every member of a parallel act group: a server
/// configured with the parallel act strategy reports the same cycles,
/// stop reason, and firing log as a serial one, command for command.
#[test]
fn served_run_budget_counts_parallel_group_members() {
    let mut replies: Vec<Vec<String>> = Vec::new();
    let mut fired: Vec<Vec<String>> = Vec::new();
    for act in [ActStrategy::Serial, ActStrategy::parallel()] {
        let cfg = ServeConfig {
            workers: 2,
            queue_depth: 512,
            programs_dir: Some("programs".into()),
            act: Some(act),
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", cfg).unwrap().spawn();
        let mut c = serve::Client::connect(handle.addr).unwrap();
        c.open("triage", None).unwrap().expect_ok().unwrap();
        let mut log = Vec::new();
        // RUN 5 must consume exactly 5 firings even when the engine groups
        // several non-interfering instantiations into one act phase.
        let first = c.run(5).unwrap().expect_ok().unwrap();
        assert!(
            first.contains("cycles=5 reason=limit total=5"),
            "act={}: {first}",
            act.name()
        );
        log.push(first);
        loop {
            let payload = c.run(5).unwrap().expect_ok().unwrap();
            let done = !payload.contains("reason=limit");
            log.push(payload);
            if done {
                break;
            }
        }
        fired.push(c.fired().unwrap().expect_lines().unwrap());
        replies.push(log);
        c.close().unwrap().expect_ok().unwrap();
        std::mem::forget(handle);
    }
    assert_eq!(
        replies[0], replies[1],
        "RUN replies diverged across act strategies"
    );
    assert_eq!(
        fired[0], fired[1],
        "firing logs diverged across act strategies"
    );
}
