//! End-to-end tests: workloads complete and validate under every engine,
//! traces feed the Multimax simulator, and the simulated speed-up shapes
//! match the paper's qualitative findings on small instances.

use multimax::{simulate, SimConfig};
use parallel_ops5::prelude::*;
use psm::trace::RunTrace;
use std::sync::{Arc, Mutex};
use workloads::{rubik, run_workload, tourney, weaver, MatcherChoice};

fn psm(procs: usize, queues: usize, scheme: LockScheme) -> MatcherChoice {
    MatcherChoice::Psm(PsmConfig {
        match_processes: procs,
        queues,
        lock_scheme: scheme,
        buckets: 256,
        scheduler: psm::SchedulerKind::SpinQueues,
    })
}

#[test]
fn rubik_validates_under_all_engines() {
    for choice in [
        MatcherChoice::Vs1,
        MatcherChoice::Vs2,
        MatcherChoice::Lisp,
        psm(2, 1, LockScheme::Simple),
        psm(3, 2, LockScheme::Mrsw),
    ] {
        let w = rubik::workload(rubik::RubikConfig {
            seed: 21,
            scramble_len: 6,
            plan: rubik::PlanMode::Inverse,
        });
        let (_e, res) = run_workload(&w, &choice).unwrap();
        assert_eq!(res.reason, StopReason::Halt, "engine {}", choice.label());
    }
}

#[test]
fn tourney_both_variants_validate_under_parallel() {
    for variant in [tourney::Variant::Pathological, tourney::Variant::Fixed] {
        let w = tourney::workload(tourney::TourneyConfig { teams: 8, variant });
        let (_e, res) = run_workload(&w, &psm(3, 2, LockScheme::Simple)).unwrap();
        assert_eq!(res.reason, StopReason::Halt, "{variant:?}");
    }
}

#[test]
fn weaver_validates_under_parallel_mrsw() {
    let w = weaver::workload(weaver::WeaverConfig {
        width: 6,
        height: 5,
        kinds: 4,
        nets: 3,
        blocked_pct: 5,
        seed: 23,
    });
    let (_e, res) = run_workload(&w, &psm(4, 4, LockScheme::Mrsw)).unwrap();
    assert_eq!(res.reason, StopReason::Halt);
}

/// Records a trace for a workload.
fn record(w: &workloads::Workload) -> RunTrace {
    let sink = Arc::new(Mutex::new(RunTrace::default()));
    let (_e, _res) = run_workload(w, &MatcherChoice::Trace(sink.clone())).unwrap();
    let trace = sink.lock().unwrap().clone();
    trace
}

#[test]
fn simulated_speedup_shapes_match_paper() {
    // Rubik-style workload: independent move applications → good speed-ups,
    // improved by multiple queues.
    let rw = rubik::workload(rubik::RubikConfig {
        seed: 33,
        scramble_len: 12,
        plan: rubik::PlanMode::Inverse,
    });
    let rt = record(&rw);

    let t1 = simulate(&rt, &SimConfig::new(1, 1, LockScheme::Simple)).match_time as f64;
    let t5_1q = simulate(&rt, &SimConfig::new(5, 1, LockScheme::Simple)).match_time as f64;
    let t5_4q = simulate(&rt, &SimConfig::new(5, 4, LockScheme::Simple)).match_time as f64;
    let s_1q = t1 / t5_1q;
    let s_4q = t1 / t5_4q;
    assert!(
        s_1q > 1.5,
        "some speed-up even with one queue (got {s_1q:.2})"
    );
    assert!(
        s_4q >= s_1q * 0.98,
        "multiple queues should not hurt (1q {s_1q:.2}, 4q {s_4q:.2})"
    );

    // Queue contention grows with processes on a single queue (Table 4-7).
    let c2 = simulate(&rt, &SimConfig::new(2, 1, LockScheme::Simple)).avg_queue_spins();
    let c13 = simulate(&rt, &SimConfig::new(13, 1, LockScheme::Simple)).avg_queue_spins();
    assert!(
        c13 > c2,
        "contention grows with processes (2: {c2:.2}, 13: {c13:.2})"
    );
    let c13_8q = simulate(&rt, &SimConfig::new(13, 8, LockScheme::Simple)).avg_queue_spins();
    assert!(
        c13_8q < c13,
        "8 queues reduce contention (1q {c13:.2}, 8q {c13_8q:.2})"
    );
}

#[test]
fn tourney_cross_products_resist_speedup() {
    // Pathological Tourney serializes on a shared hash line; the fixed
    // variant distributes. Compare simulated speed-ups at 1+8.
    // The pathology is quadratic: enough teams make the single shared hash
    // line the bottleneck (the paper's Tourney examined ~270 tokens per
    // activation on its cross-product join).
    let wp = tourney::workload(tourney::TourneyConfig {
        teams: 16,
        variant: tourney::Variant::Pathological,
    });
    let tp = record(&wp);
    let wf = tourney::workload(tourney::TourneyConfig {
        teams: 16,
        variant: tourney::Variant::Fixed,
    });
    let tf = record(&wf);

    let sp = {
        let t1 = simulate(&tp, &SimConfig::new(1, 8, LockScheme::Simple)).match_time as f64;
        let t8 = simulate(&tp, &SimConfig::new(8, 8, LockScheme::Simple)).match_time as f64;
        t1 / t8
    };
    let sf = {
        let t1 = simulate(&tf, &SimConfig::new(1, 8, LockScheme::Simple)).match_time as f64;
        let t8 = simulate(&tf, &SimConfig::new(8, 8, LockScheme::Simple)).match_time as f64;
        t1 / t8
    };
    assert!(
        sf > sp,
        "fixed variant must out-scale the pathological one (fixed {sf:.2} vs pathological {sp:.2})"
    );
}

#[test]
fn mrsw_reduces_line_contention_but_costs_overhead() {
    let wp = tourney::workload(tourney::TourneyConfig {
        teams: 10,
        variant: tourney::Variant::Pathological,
    });
    let tp = record(&wp);

    let simple = simulate(&tp, &SimConfig::new(6, 8, LockScheme::Simple));
    let mrsw = simulate(&tp, &SimConfig::new(6, 8, LockScheme::Mrsw));
    // Table 4-9: contention drops under MRSW.
    assert!(
        mrsw.avg_hash_left() <= simple.avg_hash_left(),
        "MRSW should not increase left-side line contention (simple {:.2}, mrsw {:.2})",
        simple.avg_hash_left(),
        mrsw.avg_hash_left()
    );
    // Table 4-8 vs 4-6: the uniprocessor pays for the complex locks.
    let u_simple = simulate(&tp, &SimConfig::new(1, 1, LockScheme::Simple)).match_time;
    let u_mrsw = simulate(&tp, &SimConfig::new(1, 1, LockScheme::Mrsw)).match_time;
    assert!(
        u_mrsw > u_simple,
        "complex locks must slow the uniprocessor ({u_mrsw} vs {u_simple})"
    );
}

#[test]
fn real_threads_show_no_loss_vs_sequential_results() {
    // The threaded matcher on this host may not speed anything up (the CI
    // box can have one core), but it must produce identical outcomes with
    // real concurrency — covered by stats equality here.
    let w = rubik::workload(rubik::RubikConfig {
        seed: 5,
        scramble_len: 8,
        plan: rubik::PlanMode::Inverse,
    });
    let (e_seq, _) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
    let w = rubik::workload(rubik::RubikConfig {
        seed: 5,
        scramble_len: 8,
        plan: rubik::PlanMode::Inverse,
    });
    let (e_par, _) = run_workload(&w, &psm(4, 4, LockScheme::Simple)).unwrap();
    assert_eq!(
        e_seq.match_stats().wme_changes,
        e_par.match_stats().wme_changes
    );
    assert_eq!(e_seq.cycles(), e_par.cycles());
}
